package analyzer

import (
	"fmt"
	"time"

	"repro/internal/simclock"
	"repro/internal/trace"
)

// Report is the full output of one analysis: phases plus the derived
// tables the paper presents.
type Report struct {
	Workload  string
	Algorithm Algorithm

	Steps  int
	Phases []*Phase

	// Longest is the most time-consuming phase.
	Longest *Phase

	// TopHostOps / TopTPUOps are the top-5 operators of the longest
	// phase per device — one column of Table II.
	TopHostOps []trace.OpTotal
	TopTPUOps  []trace.OpTotal

	// CoverageTop3 is the execution-time share of the three longest
	// phases (Figures 7-9).
	CoverageTop3 float64

	// Sweep diagnostics (whichever the algorithm produced).
	KMeansSSD    []float64 // Figure 4 series
	ChosenK      int
	DBSCANGrid   []int     // Figure 5 x-axis
	DBSCANNoise  []float64 // Figure 5 series
	ChosenMinPts int

	// Window metadata averaged over all steps.
	IdleFrac float64
	MXUUtil  float64

	TotalTime simclock.Duration
}

// Analyze reduces profile records to a phase report with one algorithm.
func Analyze(workload string, records []*trace.ProfileRecord, algo Algorithm, opts Options) (*Report, error) {
	steps := trace.AggregateSteps(records)
	return AnalyzeSteps(workload, steps, algo, opts)
}

// AnalyzeSteps is Analyze for already-aggregated step statistics.
func AnalyzeSteps(workload string, steps []*trace.StepStat, algo Algorithm, opts Options) (*Report, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("analyzer: no steps to analyze")
	}
	opts = opts.withDefaults()
	r := &Report{Workload: workload, Algorithm: algo, Steps: len(steps)}

	switch algo {
	case OLSAlgo:
		start := time.Now()
		r.Phases = OLS(steps, opts.Threshold)
		opts.Obs.Histogram("analyzer.stage.ols_us").ObserveSince(start)
	case KMeansAlgo:
		phases, ssd, k, err := KMeansPhases(steps, opts)
		if err != nil {
			return nil, err
		}
		r.Phases, r.KMeansSSD, r.ChosenK = phases, ssd, k
	case DBSCANAlgo:
		phases, grid, noise, minPts, err := DBSCANPhases(steps, opts)
		if err != nil {
			return nil, err
		}
		r.Phases, r.DBSCANGrid, r.DBSCANNoise, r.ChosenMinPts = phases, grid, noise, minPts
	default:
		return nil, fmt.Errorf("analyzer: unknown algorithm %q", algo)
	}

	ordered := SortByTotal(r.Phases)
	r.Longest = ordered[0]
	r.TopHostOps = r.Longest.TopOps(trace.Host, 5)
	r.TopTPUOps = r.Longest.TopOps(trace.TPU, 5)
	r.CoverageTop3 = Coverage(r.Phases, 3)

	var weighted float64
	var span simclock.Duration
	var first, last simclock.Time
	for i, s := range steps {
		d := s.End.Sub(s.Start)
		span += d
		weighted += float64(d)
		r.IdleFrac += s.IdleFrac * float64(d)
		r.MXUUtil += s.MXUUtil * float64(d)
		if i == 0 || s.Start < first {
			first = s.Start
		}
		if s.End > last {
			last = s.End
		}
	}
	if weighted > 0 {
		r.IdleFrac /= weighted
		r.MXUUtil /= weighted
	}
	r.TotalTime = last.Sub(first)
	return r, nil
}

// OLSSweep counts phases across similarity thresholds (Figure 6's data).
// Thresholds are fractions in [0, 1].
func OLSSweep(steps []*trace.StepStat, thresholds []float64) []int {
	out := make([]int, len(thresholds))
	for i, th := range thresholds {
		out[i] = len(OLS(steps, th))
	}
	return out
}
