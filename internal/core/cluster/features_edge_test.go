package cluster

// Edge-case coverage for feature normalization: zero-variance columns,
// single-step windows, and the NaN/Inf guard.

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestStandardizeZeroVarianceColumns(t *testing.T) {
	m := NewMatrix(5, 3)
	for i := 0; i < 5; i++ {
		m.Set(i, 0, float64(i)) // varying
		m.Set(i, 1, 42)         // constant non-zero
		m.Set(i, 2, 0)          // constant zero
	}
	Standardize(m)
	for i := 0; i < 5; i++ {
		if m.At(i, 1) != 0 {
			t.Fatalf("constant column not zeroed: row %d = %g", i, m.At(i, 1))
		}
		if m.At(i, 2) != 0 {
			t.Fatalf("zero column not preserved as zero: row %d = %g", i, m.At(i, 2))
		}
		if math.IsNaN(m.At(i, 0)) {
			t.Fatalf("varying column became NaN at row %d", i)
		}
	}
}

// TestStandardizeSingleStepWindow: a one-row matrix (single profiled step)
// has zero variance everywhere; every entry must become 0, never NaN.
func TestStandardizeSingleStepWindow(t *testing.T) {
	m := NewMatrix(1, 4)
	for j := 0; j < 4; j++ {
		m.Set(0, j, float64(3*j+1))
	}
	Standardize(m)
	for j := 0; j < 4; j++ {
		if v := m.At(0, j); v != 0 {
			t.Fatalf("single-row column %d = %g, want 0", j, v)
		}
	}
}

func TestStandardizeNaNGuard(t *testing.T) {
	cases := []struct {
		name string
		bad  float64
	}{
		{"NaN", math.NaN()},
		{"+Inf", math.Inf(1)},
		{"-Inf", math.Inf(-1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMatrix(4, 2)
			for i := 0; i < 4; i++ {
				m.Set(i, 0, float64(i))
				m.Set(i, 1, float64(i*i))
			}
			m.Set(2, 1, tc.bad) // poison one cell of column 1
			Standardize(m)
			for i := 0; i < 4; i++ {
				if v := m.At(i, 1); v != 0 {
					t.Fatalf("poisoned column row %d = %g, want 0", i, v)
				}
				if v := m.At(i, 0); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("clean column row %d corrupted: %g", i, v)
				}
			}
		})
	}
}

// TestStandardizeEmptyAndDegenerate: empty and zero-column matrices pass
// through untouched instead of dividing by zero.
func TestStandardizeEmptyAndDegenerate(t *testing.T) {
	if m := Standardize(NewMatrix(0, 0)); m.Rows != 0 {
		t.Fatal("empty matrix mutated")
	}
	if m := Standardize(NewMatrix(3, 0)); m.Cols != 0 {
		t.Fatal("zero-column matrix mutated")
	}
}

// TestFeaturesSingleStep: a one-step window still produces a full
// (count, duration) row and survives the standardize → PCA → k-means
// pipeline without NaNs.
func TestFeaturesSingleStep(t *testing.T) {
	s := trace.NewStepStat(1)
	s.Observe(trace.Event{Name: "fusion", Device: trace.TPU, Start: 0, Dur: 100, Step: 1})
	s.Observe(trace.Event{Name: "copy", Device: trace.Host, Start: 0, Dur: 10, Step: 1})
	m, keys := Features([]*trace.StepStat{s})
	if m.Rows != 1 || len(keys) != 2 || m.Cols != 4 {
		t.Fatalf("matrix %dx%d with %d keys", m.Rows, m.Cols, len(keys))
	}
	Standardize(m)
	for j := 0; j < m.Cols; j++ {
		if m.At(0, j) != 0 {
			t.Fatalf("single-step standardized col %d = %g", j, m.At(0, j))
		}
	}
	red := PCA(m, 2)
	r, err := KMeans(red, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.SSD) {
		t.Fatal("single-step k-means SSD is NaN")
	}
}

// TestFeaturesStepWithNoOps: steps with empty op maps yield all-zero rows
// (zero-variance features), which the pipeline must tolerate.
func TestFeaturesStepWithNoOps(t *testing.T) {
	s1 := trace.NewStepStat(1)
	s1.Observe(trace.Event{Name: "fusion", Device: trace.TPU, Start: 0, Dur: 100, Step: 1})
	s2 := trace.NewStepStat(2) // no ops observed
	m, _ := Features([]*trace.StepStat{s1, s2})
	row := m.Row(1)
	for j, v := range row {
		if v != 0 {
			t.Fatalf("empty step row col %d = %g", j, v)
		}
	}
	Standardize(m)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if v := m.At(i, j); math.IsNaN(v) {
				t.Fatalf("NaN at (%d, %d)", i, j)
			}
		}
	}
	if _, err := DBSCAN(m, 1, 0, 0); err != nil {
		t.Fatalf("DBSCAN on degenerate features: %v", err)
	}
}
