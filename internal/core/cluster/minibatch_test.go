package cluster

import (
	"testing"
)

// blob returns a point near one of four well-separated centers.
func blob(center int, wobble float64) []float64 {
	base := [][]float64{
		{0, 0, 0},
		{10, 0, 0},
		{0, 10, 0},
		{0, 0, 10},
	}[center]
	out := make([]float64, len(base))
	for i, v := range base {
		out[i] = v + wobble
	}
	return out
}

func TestStreamKMeansSeparatesBlobs(t *testing.T) {
	m := NewStreamKMeans(4, 3, 16, 1)
	for i := 0; i < 400; i++ {
		m.Observe(blob(i%4, float64(i%5)*0.1))
	}
	m.Flush()
	if !m.Seeded() {
		t.Fatal("model never seeded")
	}
	if m.Seen() != 400 {
		t.Fatalf("Seen = %d, want 400", m.Seen())
	}
	// Every blob center should land in its own cluster.
	labels := make(map[int]bool)
	for c := 0; c < 4; c++ {
		labels[m.Assign(blob(c, 0))] = true
	}
	if len(labels) != 4 {
		t.Fatalf("4 separated blobs mapped to %d distinct clusters", len(labels))
	}
}

func TestStreamKMeansDeterministic(t *testing.T) {
	run := func() []float64 {
		m := NewStreamKMeans(3, 3, 8, 99)
		for i := 0; i < 200; i++ {
			m.Observe(blob(i%3, float64(i%7)*0.05))
		}
		m.Flush()
		var flat []float64
		for c := 0; c < m.K(); c++ {
			flat = append(flat, m.Centroid(c)...)
		}
		return flat
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("centroid coordinate %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStreamKMeansAssignReadOnly(t *testing.T) {
	m := NewStreamKMeans(2, 2, 4, 5)
	for i := 0; i < 8; i++ {
		m.Observe([]float64{float64(i % 2 * 10), 0})
	}
	before := append(m.Centroid(0), m.Centroid(1)...)
	for i := 0; i < 100; i++ {
		m.Assign([]float64{5, 5})
	}
	after := append(m.Centroid(0), m.Centroid(1)...)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Assign mutated the model")
		}
	}
}

func TestStreamKMeansUnseeded(t *testing.T) {
	m := NewStreamKMeans(2, 2, 8, 0)
	if m.Assign([]float64{1, 2}) != -1 {
		t.Fatal("Assign before seeding should return -1")
	}
	if m.Centroid(0) != nil {
		t.Fatal("Centroid before seeding should be nil")
	}
	m.Observe([]float64{1, 1})
	if m.Seeded() {
		t.Fatal("one staged point should not seed the model")
	}
	m.Flush() // partial-buffer flush seeds
	if !m.Seeded() {
		t.Fatal("Flush on a partial buffer should seed")
	}
}

func TestStreamKMeansBoundedState(t *testing.T) {
	m := NewStreamKMeans(4, 8, 32, 3)
	x := make([]float64, 8)
	base := m.StateBytes()
	for i := 0; i < 10000; i++ {
		x[0] = float64(i)
		m.Observe(x)
	}
	if got := m.StateBytes(); got != base {
		t.Fatalf("state grew %d -> %d bytes after 10k observations; must be constant", base, got)
	}
}

func TestStreamKMeansDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dims Observe should panic")
		}
	}()
	NewStreamKMeans(2, 3, 8, 0).Observe([]float64{1})
}
