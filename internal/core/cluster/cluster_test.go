package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// blobs builds a matrix with three well-separated Gaussian blobs.
func blobs(n int, seed uint64) (*Matrix, []int) {
	rng := prng.New(seed)
	centers := [][2]float64{{0, 0}, {20, 0}, {0, 20}}
	m := NewMatrix(n, 2)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		truth[i] = c
		m.Set(i, 0, centers[c][0]+rng.Normal(0, 1))
		m.Set(i, 1, centers[c][1]+rng.Normal(0, 1))
	}
	return m, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	m, truth := blobs(300, 1)
	r, err := KMeans(m, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All points with the same truth label must share a cluster.
	label := map[int]int{}
	errors := 0
	for i, c := range r.Assignment {
		if want, ok := label[truth[i]]; ok {
			if c != want {
				errors++
			}
		} else {
			label[truth[i]] = c
		}
	}
	if errors > 6 {
		t.Fatalf("k-means misassigned %d of 300 points", errors)
	}
	if r.SSD <= 0 {
		t.Fatal("SSD not positive")
	}
}

func TestKMeansSSDDecreasesWithK(t *testing.T) {
	m, _ := blobs(300, 2)
	ssd, err := SSDSweep(m, 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Not strictly monotone (local optima), but k=1 must dominate k=3
	// and the overall trend must fall.
	if ssd[2] >= ssd[0] {
		t.Fatalf("SSD(3)=%g >= SSD(1)=%g", ssd[2], ssd[0])
	}
	if ssd[7] >= ssd[0]/2 {
		t.Fatalf("SSD(8)=%g did not fall substantially from SSD(1)=%g", ssd[7], ssd[0])
	}
}

func TestKMeansElbowAtTrueK(t *testing.T) {
	m, _ := blobs(600, 3)
	ssd, err := SSDSweep(m, 10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := Elbow(ssd)
	if k < 2 || k > 4 {
		t.Fatalf("elbow at k=%d, want ~3 (ssd=%v)", k, ssd)
	}
}

func TestKMeansKGreaterThanRows(t *testing.T) {
	m, _ := blobs(4, 1)
	r, err := KMeans(m, 10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 4 {
		t.Fatalf("K clamped to %d, want 4", r.K)
	}
}

func TestKMeansErrors(t *testing.T) {
	m, _ := blobs(10, 1)
	if _, err := KMeans(m, 0, 1, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(NewMatrix(0, 0), 1, 1, 0); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestKMeansBudget(t *testing.T) {
	m, _ := blobs(1000, 1)
	_, err := KMeans(m, 3, 1, 100) // 100 bytes: absurdly small
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	m, _ := blobs(200, 9)
	a, _ := KMeans(m, 4, 42, 0)
	b, _ := KMeans(m, 4, 42, 0)
	if a.SSD != b.SSD {
		t.Fatal("same seed, different SSD")
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestDBSCANFindsBlobs(t *testing.T) {
	m, truth := blobs(300, 4)
	r, err := DBSCAN(m, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clusters != 3 {
		t.Fatalf("clusters = %d, want 3 (noise %d, eps %g)", r.Clusters, r.NoiseCount, r.Eps)
	}
	// Cluster labels must be consistent with truth for non-noise points.
	label := map[int]int{}
	bad := 0
	for i, l := range r.Labels {
		if l == Noise {
			continue
		}
		if want, ok := label[truth[i]]; ok && l != want {
			bad++
		} else if !ok {
			label[truth[i]] = l
		}
	}
	if bad > 6 {
		t.Fatalf("DBSCAN misassigned %d points", bad)
	}
}

func TestDBSCANNoiseGrowsWithMinPts(t *testing.T) {
	m, _ := blobs(240, 5)
	pts, ratios, err := NoiseSweep(m, 180, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	if ratios[len(ratios)-1] < ratios[0] {
		t.Fatalf("noise ratio not rising: %v", ratios)
	}
	// With minPts 180 > blob size 80, everything is noise.
	if ratios[len(ratios)-1] < 0.99 {
		t.Fatalf("minPts=180 on 80-point blobs should be all noise: %v", ratios)
	}
}

func TestDBSCANBudget(t *testing.T) {
	m, _ := blobs(200, 6)
	_, err := DBSCAN(m, 5, 0, 1000)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v", err)
	}
}

func TestDBSCANErrors(t *testing.T) {
	m, _ := blobs(10, 1)
	if _, err := DBSCAN(m, 0, 0, 0); err == nil {
		t.Fatal("minPts=0 accepted")
	}
	if _, err := DBSCAN(NewMatrix(0, 0), 5, 0, 0); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestElbow(t *testing.T) {
	// A classic elbow at index 3.
	series := []float64{100, 60, 30, 10, 8, 7, 6.5, 6}
	if k := Elbow(series); k != 4 && k != 3 {
		t.Fatalf("elbow at %d, want 3-4", k)
	}
	if k := Elbow([]float64{5, 4}); k != 2 {
		t.Fatalf("short series elbow = %d", k)
	}
	if k := Elbow(nil); k != 0 {
		t.Fatalf("nil series elbow = %d", k)
	}
}

func TestFeaturesMatrix(t *testing.T) {
	s1 := trace.NewStepStat(1)
	s1.Observe(trace.Event{Name: "fusion", Device: trace.TPU, Start: 0, Dur: 100, Step: 1})
	s1.Observe(trace.Event{Name: "fusion", Device: trace.TPU, Start: 100, Dur: 100, Step: 1})
	s2 := trace.NewStepStat(2)
	s2.Observe(trace.Event{Name: "Reshape", Device: trace.TPU, Start: 200, Dur: 50, Step: 2})

	m, keys := Features([]*trace.StepStat{s1, s2})
	if m.Rows != 2 || m.Cols != 4 {
		t.Fatalf("matrix %dx%d, want 2x4", m.Rows, m.Cols)
	}
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	// fusion dominates total time, so it is column pair 0.
	if keys[0].Name != "fusion" {
		t.Fatalf("keys[0] = %v", keys[0])
	}
	if m.At(0, 0) != 2 || m.At(0, 1) != 200 {
		t.Fatalf("fusion features = %g, %g", m.At(0, 0), m.At(0, 1))
	}
	if m.At(1, 2) != 1 || m.At(1, 3) != 50 {
		t.Fatalf("reshape features = %g, %g", m.At(1, 2), m.At(1, 3))
	}
}

func TestFeaturesCapsVocabulary(t *testing.T) {
	steps := make([]*trace.StepStat, 5)
	for i := range steps {
		s := trace.NewStepStat(int64(i))
		for j := 0; j < 150; j++ {
			s.Observe(trace.Event{
				Name:   "op" + string(rune('a'+j%26)) + string(rune('a'+j/26)),
				Device: trace.TPU,
				Start:  simclock.Time(j), Dur: simclock.Duration(j + 1), Step: int64(i),
			})
		}
		steps[i] = s
	}
	m, keys := Features(steps)
	if len(keys) != MaxFeatureOps {
		t.Fatalf("vocabulary = %d, want %d", len(keys), MaxFeatureOps)
	}
	if m.Cols != 2*MaxFeatureOps {
		t.Fatalf("cols = %d", m.Cols)
	}
}

func TestFeaturesEmpty(t *testing.T) {
	m, keys := Features(nil)
	if m.Rows != 0 || keys != nil {
		t.Fatal("empty input should produce empty matrix")
	}
}

func TestStandardize(t *testing.T) {
	m := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		m.Set(i, 0, float64(i))
		m.Set(i, 1, 7) // constant column
	}
	Standardize(m)
	var mean, variance float64
	for i := 0; i < 4; i++ {
		mean += m.At(i, 0)
	}
	mean /= 4
	for i := 0; i < 4; i++ {
		d := m.At(i, 0) - mean
		variance += d * d
	}
	variance /= 4
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
		t.Fatalf("standardized column mean=%g var=%g", mean, variance)
	}
	for i := 0; i < 4; i++ {
		if m.At(i, 1) != 0 {
			t.Fatal("constant column not zeroed")
		}
	}
}

func TestPCAReducesAndPreservesStructure(t *testing.T) {
	// Embed 3 blobs in 10 dims (8 are pure noise); PCA to 2 must keep
	// the blobs separable for k-means.
	rng := prng.New(11)
	n := 300
	m := NewMatrix(n, 10)
	truth := make([]int, n)
	centers := [][2]float64{{0, 0}, {25, 0}, {0, 25}}
	for i := 0; i < n; i++ {
		c := i % 3
		truth[i] = c
		m.Set(i, 0, centers[c][0]+rng.Normal(0, 1))
		m.Set(i, 1, centers[c][1]+rng.Normal(0, 1))
		for j := 2; j < 10; j++ {
			m.Set(i, j, rng.Normal(0, 0.5))
		}
	}
	red := PCA(m, 2)
	if red.Cols != 2 {
		t.Fatalf("PCA cols = %d", red.Cols)
	}
	r, err := KMeans(red, 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	label := map[int]int{}
	bad := 0
	for i, c := range r.Assignment {
		if want, ok := label[truth[i]]; ok && c != want {
			bad++
		} else if !ok {
			label[truth[i]] = c
		}
	}
	if bad > 9 {
		t.Fatalf("PCA+kmeans misassigned %d of %d", bad, n)
	}
}

func TestPCANoOpWhenKLarge(t *testing.T) {
	m, _ := blobs(10, 1)
	if out := PCA(m, 5); out != m {
		t.Fatal("PCA should return input when k >= cols")
	}
}

// Property: k-means SSD with k=n is ~0 (every point its own centroid).
func TestPropertyKMeansPerfectFit(t *testing.T) {
	f := func(seed uint64) bool {
		m, _ := blobs(30, seed)
		r, err := KMeans(m, 30, seed, 0)
		if err != nil {
			return false
		}
		return r.SSD < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: DBSCAN labels are either Noise or in [0, Clusters).
func TestPropertyDBSCANLabelRange(t *testing.T) {
	f := func(seed uint64, minPtsRaw uint8) bool {
		m, _ := blobs(60, seed)
		minPts := 1 + int(minPtsRaw%30)
		r, err := DBSCAN(m, minPts, 0, 0)
		if err != nil {
			return false
		}
		for _, l := range r.Labels {
			if l != Noise && (l < 0 || l >= r.Clusters) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKMeans600x40(b *testing.B) {
	rng := prng.New(1)
	m := NewMatrix(600, 40)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(m, 5, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBSCAN600x40(b *testing.B) {
	rng := prng.New(1)
	m := NewMatrix(600, 40)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DBSCAN(m, 10, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
