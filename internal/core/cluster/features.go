// Package cluster implements the clustering machinery behind
// TPUPoint-Analyzer: step feature-vector construction, PCA dimensionality
// reduction, k-means with the elbow method, and DBSCAN with a
// minimum-samples sweep — the SimPoint-style toolkit of Section IV.
//
// All algorithms operate on a dense feature matrix whose rows are training
// steps and whose columns are per-operator statistics (invocation count
// and total duration per op), exactly the "frequency vector
// representation" the paper builds before clustering.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// ErrMemoryBudget is returned when a clustering run would exceed the
// configured memory budget — the failure mode the paper reports for
// k-means/DBSCAN on its largest workloads (Table II).
var ErrMemoryBudget = errors.New("cluster: memory budget exceeded")

// MaxFeatureOps caps the operator vocabulary per the paper: "we have at
// most 100 distinct operations for frequency vector representation."
const MaxFeatureOps = 100

// Matrix is a dense row-major feature matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Bytes returns the matrix's approximate memory footprint.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 8 }

// Features builds the step × (2·ops) feature matrix from aggregated step
// statistics. Columns come in (count, duration) pairs per operator. If the
// vocabulary exceeds MaxFeatureOps, only the MaxFeatureOps most
// time-consuming operators are kept.
func Features(steps []*trace.StepStat) (*Matrix, []trace.OpKey) {
	if len(steps) == 0 {
		return NewMatrix(0, 0), nil
	}
	totals := make(map[trace.OpKey]float64)
	for _, s := range steps {
		for k, st := range s.Ops {
			totals[k] += float64(st.Total)
		}
	}
	keys := make([]trace.OpKey, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if totals[keys[i]] != totals[keys[j]] {
			return totals[keys[i]] > totals[keys[j]]
		}
		if keys[i].Device != keys[j].Device {
			return keys[i].Device < keys[j].Device
		}
		return keys[i].Name < keys[j].Name
	})
	if len(keys) > MaxFeatureOps {
		keys = keys[:MaxFeatureOps]
	}
	idx := make(map[trace.OpKey]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	m := NewMatrix(len(steps), 2*len(keys))
	for i, s := range steps {
		row := m.Row(i)
		for k, st := range s.Ops {
			j, ok := idx[k]
			if !ok {
				continue
			}
			row[2*j] = float64(st.Count)
			row[2*j+1] = float64(st.Total)
		}
	}
	return m, keys
}

// Standardize rescales each column to zero mean and unit variance in
// place; constant columns become zero. It returns the matrix for chaining.
func Standardize(m *Matrix) *Matrix {
	for j := 0; j < m.Cols; j++ {
		var mean float64
		for i := 0; i < m.Rows; i++ {
			mean += m.At(i, j)
		}
		mean /= float64(m.Rows)
		var variance float64
		for i := 0; i < m.Rows; i++ {
			d := m.At(i, j) - mean
			variance += d * d
		}
		variance /= float64(m.Rows)
		sd := math.Sqrt(variance)
		for i := 0; i < m.Rows; i++ {
			if sd == 0 {
				m.Set(i, j, 0)
			} else {
				m.Set(i, j, (m.At(i, j)-mean)/sd)
			}
		}
	}
	return m
}

// sqDist returns the squared Euclidean distance of two vectors.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// validateBudget fails if need exceeds budget (budget <= 0 disables).
func validateBudget(need, budget int64, what string) error {
	if budget > 0 && need > budget {
		return fmt.Errorf("%w: %s needs %d bytes, budget %d", ErrMemoryBudget, what, need, budget)
	}
	return nil
}
