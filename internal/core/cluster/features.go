// Package cluster implements the clustering machinery behind
// TPUPoint-Analyzer: step feature-vector construction, PCA dimensionality
// reduction, k-means with the elbow method, and DBSCAN with a
// minimum-samples sweep — the SimPoint-style toolkit of Section IV.
//
// All algorithms operate on a dense feature matrix whose rows are training
// steps and whose columns are per-operator statistics (invocation count
// and total duration per op), exactly the "frequency vector
// representation" the paper builds before clustering.
//
// Every hot path has a parallel variant (the *P functions) that fans out
// over a bounded worker pool. Chunk boundaries are fixed by the input
// size and reductions merge in chunk order, so results are bit-identical
// across worker counts — see internal/parallel.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/trace"
)

// ErrMemoryBudget is returned when a clustering run would exceed the
// configured memory budget — the failure mode the paper reports for
// k-means/DBSCAN on its largest workloads (Table II).
var ErrMemoryBudget = errors.New("cluster: memory budget exceeded")

// MaxFeatureOps caps the operator vocabulary per the paper: "we have at
// most 100 distinct operations for frequency vector representation."
const MaxFeatureOps = 100

// Fixed fan-out chunk sizes. These are part of the determinism contract:
// chunk boundaries — and therefore reduction grouping — depend only on
// the input size, never on the worker count or the machine.
const (
	// parChunk is the row-chunk size for per-row fan-outs.
	parChunk = 512
	// covChunk is the row-chunk size for covariance accumulation, kept
	// larger because each chunk owns a d×d partial matrix.
	covChunk = 4096
)

// Matrix is a dense row-major feature matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Bytes returns the matrix's approximate memory footprint.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 8 }

// Features builds the step × (2·ops) feature matrix from aggregated step
// statistics. Columns come in (count, duration) pairs per operator. If the
// vocabulary exceeds MaxFeatureOps, only the MaxFeatureOps most
// time-consuming operators are kept.
func Features(steps []*trace.StepStat) (*Matrix, []trace.OpKey) {
	return FeaturesP(steps, 0)
}

// FeaturesP is Features with an explicit worker bound. The per-operator
// totals accumulate into per-chunk maps merged in chunk order and the
// row fill writes disjoint rows, so the matrix is bit-identical for
// every worker count.
func FeaturesP(steps []*trace.StepStat, workers int) (*Matrix, []trace.OpKey) {
	if len(steps) == 0 {
		return NewMatrix(0, 0), nil
	}
	pool := parallel.New(workers)
	ctx := context.Background()

	chunkTotals, _ := parallel.Map(pool, ctx, len(steps), parChunk,
		func(ci, lo, hi int) (map[trace.OpKey]float64, error) {
			part := make(map[trace.OpKey]float64)
			for _, s := range steps[lo:hi] {
				for k, st := range s.Ops {
					part[k] += float64(st.Total)
				}
			}
			return part, nil
		})
	totals := make(map[trace.OpKey]float64)
	for _, part := range chunkTotals {
		for k, v := range part {
			totals[k] += v
		}
	}

	keys := make([]trace.OpKey, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if totals[keys[i]] != totals[keys[j]] {
			return totals[keys[i]] > totals[keys[j]]
		}
		if keys[i].Device != keys[j].Device {
			return keys[i].Device < keys[j].Device
		}
		return keys[i].Name < keys[j].Name
	})
	if len(keys) > MaxFeatureOps {
		keys = keys[:MaxFeatureOps]
	}
	idx := make(map[trace.OpKey]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	m := NewMatrix(len(steps), 2*len(keys))
	_ = pool.Run(ctx, len(steps), parChunk, func(ci, lo, hi int) error {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for k, st := range steps[i].Ops {
				j, ok := idx[k]
				if !ok {
					continue
				}
				row[2*j] = float64(st.Count)
				row[2*j+1] = float64(st.Total)
			}
		}
		return nil
	})
	return m, keys
}

// Standardize rescales each column to zero mean and unit variance in
// place; constant columns become zero. Columns containing non-finite
// values (NaN/Inf — e.g. from corrupted profile records) carry no usable
// signal and are zeroed rather than allowed to poison every downstream
// distance. It returns the matrix for chaining.
func Standardize(m *Matrix) *Matrix {
	return StandardizeP(m, 0)
}

// StandardizeP is Standardize with an explicit worker bound. Columns are
// independent and each is processed exactly as in the serial pass, so the
// result is bit-identical for every worker count.
func StandardizeP(m *Matrix, workers int) *Matrix {
	if m.Rows == 0 || m.Cols == 0 {
		return m
	}
	pool := parallel.New(workers)
	_ = pool.Run(context.Background(), m.Cols, 1, func(ci, lo, hi int) error {
		for j := lo; j < hi; j++ {
			standardizeColumn(m, j)
		}
		return nil
	})
	return m
}

func standardizeColumn(m *Matrix, j int) {
	var mean float64
	finite := true
	for i := 0; i < m.Rows; i++ {
		v := m.At(i, j)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			finite = false
			break
		}
		mean += v
	}
	if !finite || math.IsInf(mean, 0) {
		// NaN guard: a corrupted (or overflowing) column is all noise.
		for i := 0; i < m.Rows; i++ {
			m.Set(i, j, 0)
		}
		return
	}
	mean /= float64(m.Rows)
	var variance float64
	for i := 0; i < m.Rows; i++ {
		d := m.At(i, j) - mean
		variance += d * d
	}
	variance /= float64(m.Rows)
	sd := math.Sqrt(variance)
	for i := 0; i < m.Rows; i++ {
		if sd == 0 {
			m.Set(i, j, 0)
		} else {
			m.Set(i, j, (m.At(i, j)-mean)/sd)
		}
	}
}

// sqDist returns the squared Euclidean distance of two vectors.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SqDist is the squared Euclidean distance between two equal-length
// vectors — the metric every clustering kernel in this package uses.
// Exported so cross-run phase alignment (internal/repo's diff engine)
// measures phase-signature similarity with the exact same distance the
// analyzer clustered with.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("cluster: SqDist dimension mismatch %d != %d", len(a), len(b)))
	}
	return sqDist(a, b)
}

// validateBudget fails if need exceeds budget (budget <= 0 disables).
func validateBudget(need, budget int64, what string) error {
	if budget > 0 && need > budget {
		return fmt.Errorf("%w: %s needs %d bytes, budget %d", ErrMemoryBudget, what, need, budget)
	}
	return nil
}
