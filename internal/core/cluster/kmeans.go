package cluster

import (
	"fmt"

	"repro/internal/prng"
)

// KMeansResult holds one k-means clustering.
type KMeansResult struct {
	K          int
	Assignment []int   // per-row cluster id in [0, K)
	Centroids  *Matrix // K × dims
	SSD        float64 // sum of squared distances to assigned centroids
	Sizes      []int   // rows per cluster
	Iterations int
}

// KMeans runs Lloyd's algorithm with k-means++ seeding. seed makes runs
// reproducible. budget bounds the working memory (0 disables the check).
func KMeans(m *Matrix, k int, seed uint64, budget int64) (*KMeansResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if m.Rows == 0 {
		return nil, fmt.Errorf("cluster: empty matrix")
	}
	if k > m.Rows {
		k = m.Rows
	}
	need := m.Bytes() + int64(k*m.Cols)*8 + int64(m.Rows)*8
	if err := validateBudget(need, budget, "k-means"); err != nil {
		return nil, err
	}

	rng := prng.New(seed)
	centroids := seedPlusPlus(m, k, rng)
	assign := make([]int, m.Rows)
	sizes := make([]int, k)

	var ssd float64
	iterations := 0
	for iter := 0; iter < 200; iter++ {
		iterations = iter + 1
		// Assignment step.
		changed := false
		ssd = 0
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			best, bestD := 0, sqDist(row, centroids.Row(0))
			for c := 1; c < k; c++ {
				if d := sqDist(row, centroids.Row(c)); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			ssd += bestD
		}
		if !changed && iter > 0 {
			break
		}
		// Update step.
		next := NewMatrix(k, m.Cols)
		for i := range sizes {
			sizes[i] = 0
		}
		for i := 0; i < m.Rows; i++ {
			c := assign[i]
			sizes[c]++
			crow := next.Row(c)
			row := m.Row(i)
			for j := range crow {
				crow[j] += row[j]
			}
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(next.Row(c), m.Row(rng.Intn(m.Rows)))
				continue
			}
			crow := next.Row(c)
			for j := range crow {
				crow[j] /= float64(sizes[c])
			}
		}
		centroids = next
	}
	return &KMeansResult{
		K: k, Assignment: assign, Centroids: centroids,
		SSD: ssd, Sizes: sizes, Iterations: iterations,
	}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy.
func seedPlusPlus(m *Matrix, k int, rng *prng.Source) *Matrix {
	centroids := NewMatrix(k, m.Cols)
	copy(centroids.Row(0), m.Row(rng.Intn(m.Rows)))
	d2 := make([]float64, m.Rows)
	for c := 1; c < k; c++ {
		var total float64
		for i := 0; i < m.Rows; i++ {
			best := sqDist(m.Row(i), centroids.Row(0))
			for cc := 1; cc < c; cc++ {
				if d := sqDist(m.Row(i), centroids.Row(cc)); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			copy(centroids.Row(c), m.Row(rng.Intn(m.Rows)))
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := m.Rows - 1
		for i := 0; i < m.Rows; i++ {
			acc += d2[i]
			if acc >= target {
				pick = i
				break
			}
		}
		copy(centroids.Row(c), m.Row(pick))
	}
	return centroids
}

// SSDSweep runs k-means for k = 1..kMax and returns the SSD series the
// elbow method (and the paper's Figure 4) consumes.
func SSDSweep(m *Matrix, kMax int, seed uint64, budget int64) ([]float64, error) {
	out := make([]float64, 0, kMax)
	for k := 1; k <= kMax; k++ {
		r, err := KMeans(m, k, seed+uint64(k), budget)
		if err != nil {
			return nil, err
		}
		out = append(out, r.SSD)
	}
	return out, nil
}

// Elbow returns the 1-based index of the elbow in a decreasing series: the
// point with maximum distance from the line joining the first and last
// points. A series shorter than 3 returns its length.
func Elbow(series []float64) int {
	n := len(series)
	if n < 3 {
		return n
	}
	x1, y1 := 1.0, series[0]
	x2, y2 := float64(n), series[n-1]
	dx, dy := x2-x1, y2-y1
	den := dx*dx + dy*dy
	best, bestD := 1, -1.0
	for i := 0; i < n; i++ {
		x, y := float64(i+1), series[i]
		// Perpendicular distance to the chord (scaled; monotone in true
		// distance since den is constant).
		d := dx*(y1-y) - (x1-x)*dy
		dist := d * d / den
		if dist > bestD {
			best, bestD = i+1, dist
		}
	}
	return best
}
