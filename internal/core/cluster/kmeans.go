package cluster

import (
	"context"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/prng"
)

// KMeansResult holds one k-means clustering.
type KMeansResult struct {
	K          int
	Assignment []int   // per-row cluster id in [0, K)
	Centroids  *Matrix // K × dims
	SSD        float64 // sum of squared distances to assigned centroids
	Sizes      []int   // rows per cluster
	Iterations int
}

// KMeans runs Lloyd's algorithm with k-means++ seeding. seed makes runs
// reproducible. budget bounds the working memory (0 disables the check).
func KMeans(m *Matrix, k int, seed uint64, budget int64) (*KMeansResult, error) {
	return KMeansP(m, k, seed, budget, 0)
}

// KMeansP is KMeans with an explicit worker bound (workers <= 0 means
// GOMAXPROCS, 1 means fully serial). The assignment and update steps fan
// out over fixed-size row chunks; per-chunk partial sums are merged in
// chunk order, so the result is bit-identical for every worker count.
func KMeansP(m *Matrix, k int, seed uint64, budget int64, workers int) (*KMeansResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if m.Rows == 0 {
		return nil, fmt.Errorf("cluster: empty matrix")
	}
	if k > m.Rows {
		k = m.Rows
	}
	nc := parallel.NumChunks(m.Rows, parChunk)
	// Input + centroids + assignment + per-row distances + per-chunk
	// update partials.
	need := m.Bytes() + int64(k*m.Cols)*8 + int64(m.Rows)*16 +
		int64(nc)*int64(k)*(int64(m.Cols)*8+8)
	if err := validateBudget(need, budget, "k-means"); err != nil {
		return nil, err
	}
	pool := parallel.New(workers)
	ctx := context.Background()

	rng := prng.New(seed)
	centroids := seedPlusPlus(m, k, rng, pool)
	assign := make([]int, m.Rows)
	d2 := make([]float64, m.Rows)
	sizes := make([]int, k)

	// Per-chunk partials for the update step. Chunk boundaries depend
	// only on the row count, so merging them front to back gives the
	// same floating-point grouping regardless of the worker count.
	partSums := make([][]float64, nc)
	partCounts := make([][]int, nc)
	for ci := range partSums {
		partSums[ci] = make([]float64, k*m.Cols)
		partCounts[ci] = make([]int, k)
	}
	chunkChanged := make([]bool, nc)

	var ssd float64
	iterations := 0
	for iter := 0; iter < 200; iter++ {
		iterations = iter + 1
		// Assignment step (fused with partial-sum accumulation).
		cur := centroids
		_ = pool.Run(ctx, m.Rows, parChunk, func(ci, lo, hi int) error {
			ps := partSums[ci]
			pc := partCounts[ci]
			for i := range ps {
				ps[i] = 0
			}
			for i := range pc {
				pc[i] = 0
			}
			changed := false
			for i := lo; i < hi; i++ {
				row := m.Row(i)
				best, bestD := 0, sqDist(row, cur.Row(0))
				for c := 1; c < k; c++ {
					if d := sqDist(row, cur.Row(c)); d < bestD {
						best, bestD = c, d
					}
				}
				if assign[i] != best {
					assign[i] = best
					changed = true
				}
				d2[i] = bestD
				pc[best]++
				crow := ps[best*m.Cols : (best+1)*m.Cols]
				for j := range crow {
					crow[j] += row[j]
				}
			}
			chunkChanged[ci] = changed
			return nil
		})
		// Reductions in fixed order: row order for the SSD, chunk order
		// for the centroid sums.
		ssd = 0
		for _, d := range d2 {
			ssd += d
		}
		changed := false
		for _, ch := range chunkChanged {
			changed = changed || ch
		}
		if !changed && iter > 0 {
			break
		}
		// Update step: merge partials, then divide.
		next := NewMatrix(k, m.Cols)
		for i := range sizes {
			sizes[i] = 0
		}
		for ci := 0; ci < nc; ci++ {
			pc := partCounts[ci]
			ps := partSums[ci]
			for c := 0; c < k; c++ {
				sizes[c] += pc[c]
				crow := next.Row(c)
				prow := ps[c*m.Cols : (c+1)*m.Cols]
				for j := range crow {
					crow[j] += prow[j]
				}
			}
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(next.Row(c), m.Row(rng.Intn(m.Rows)))
				continue
			}
			crow := next.Row(c)
			for j := range crow {
				crow[j] /= float64(sizes[c])
			}
		}
		centroids = next
	}
	return &KMeansResult{
		K: k, Assignment: assign, Centroids: centroids,
		SSD: ssd, Sizes: sizes, Iterations: iterations,
	}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy.
// The distance-to-nearest-centroid table is maintained incrementally
// (each new centroid only lowers it), turning the legacy O(n·k²) scan
// into O(n·k); the per-row minima are identical, so the seeding — and the
// PRNG consumption — matches the legacy implementation bit for bit.
func seedPlusPlus(m *Matrix, k int, rng *prng.Source, pool *parallel.Pool) *Matrix {
	centroids := NewMatrix(k, m.Cols)
	copy(centroids.Row(0), m.Row(rng.Intn(m.Rows)))
	d2 := make([]float64, m.Rows)
	ctx := context.Background()
	for c := 1; c < k; c++ {
		newest := centroids.Row(c - 1)
		first := c == 1
		_ = pool.Run(ctx, m.Rows, parChunk, func(ci, lo, hi int) error {
			for i := lo; i < hi; i++ {
				d := sqDist(m.Row(i), newest)
				if first || d < d2[i] {
					d2[i] = d
				}
			}
			return nil
		})
		var total float64
		for _, d := range d2 {
			total += d
		}
		if total == 0 {
			copy(centroids.Row(c), m.Row(rng.Intn(m.Rows)))
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := m.Rows - 1
		for i := 0; i < m.Rows; i++ {
			acc += d2[i]
			if acc >= target {
				pick = i
				break
			}
		}
		copy(centroids.Row(c), m.Row(pick))
	}
	return centroids
}

// SSDSweep runs k-means for k = 1..kMax and returns the SSD series the
// elbow method (and the paper's Figure 4) consumes.
func SSDSweep(m *Matrix, kMax int, seed uint64, budget int64) ([]float64, error) {
	return SSDSweepP(m, kMax, seed, budget, 0)
}

// SSDSweepP is SSDSweep with an explicit worker bound for each k-means
// run.
func SSDSweepP(m *Matrix, kMax int, seed uint64, budget int64, workers int) ([]float64, error) {
	out := make([]float64, 0, kMax)
	for k := 1; k <= kMax; k++ {
		r, err := KMeansP(m, k, seed+uint64(k), budget, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, r.SSD)
	}
	return out, nil
}

// Elbow returns the 1-based index of the elbow in a decreasing series: the
// point with maximum distance from the line joining the first and last
// points. A series shorter than 3 returns its length.
func Elbow(series []float64) int {
	n := len(series)
	if n < 3 {
		return n
	}
	x1, y1 := 1.0, series[0]
	x2, y2 := float64(n), series[n-1]
	dx, dy := x2-x1, y2-y1
	den := dx*dx + dy*dy
	best, bestD := 1, -1.0
	for i := 0; i < n; i++ {
		x, y := float64(i+1), series[i]
		// Perpendicular distance to the chord (scaled; monotone in true
		// distance since den is constant).
		d := dx*(y1-y) - (x1-x)*dy
		dist := d * d / den
		if dist > bestD {
			best, bestD = i+1, dist
		}
	}
	return best
}
