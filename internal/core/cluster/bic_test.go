package cluster

import (
	"math"
	"testing"
)

func TestBICPrefersTrueK(t *testing.T) {
	m, _ := blobs(600, 21)
	scores, err := BICSweep(m, 8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 8 {
		t.Fatalf("scores = %d", len(scores))
	}
	k := BestBIC(scores)
	if k < 3 || k > 5 {
		t.Fatalf("BIC chose k=%d for 3 blobs (scores %v)", k, scores)
	}
	// BIC must punish k=1 hard relative to the winner.
	if scores[0] >= scores[k-1] {
		t.Fatalf("k=1 (%.1f) scored no worse than k=%d (%.1f)", scores[0], k, scores[k-1])
	}
}

func TestBICAgreesWithElbowOnBlobs(t *testing.T) {
	m, _ := blobs(450, 23)
	ssd, err := SSDSweep(m, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	bic, err := BICSweep(m, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	ke := Elbow(ssd)
	kb := BestBIC(bic)
	if diff := ke - kb; diff > 2 || diff < -2 {
		t.Fatalf("elbow k=%d and BIC k=%d disagree badly", ke, kb)
	}
}

func TestBICDegenerateCases(t *testing.T) {
	m, _ := blobs(5, 1)
	r, err := KMeans(m, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := BIC(m, r); !math.IsInf(v, -1) {
		t.Fatalf("BIC with k=n should be -Inf, got %g", v)
	}
	if BestBIC(nil) != 1 {
		t.Fatal("BestBIC(nil) should default to 1")
	}
}

func BenchmarkBICSweep(b *testing.B) {
	m, _ := blobs(400, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BICSweep(m, 10, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}
