package cluster

// Differential tests for the parallel phase-detection hot path: every
// parallel variant must produce bit-identical output for any worker
// count (the fixed-chunk determinism contract), and the grid-indexed
// DBSCAN must reproduce the brute-force reference exactly.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/prng"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// diffSizes are the row counts the differential suite sweeps. 1e4 runs
// only without -short to keep the race-enabled suite quick.
func diffSizes(t *testing.T) []int {
	if testing.Short() {
		return []int{10, 1000}
	}
	return []int{10, 1000, 10000}
}

// workerGrid is the parallelism sweep from the acceptance criteria.
func workerGrid() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// gaussMatrix builds an n×dims matrix of three Gaussian blobs.
func gaussMatrix(n, dims int, seed uint64) *Matrix {
	rng := prng.New(seed)
	m := NewMatrix(n, dims)
	centers := [3]float64{0, 20, -20}
	for i := 0; i < n; i++ {
		c := centers[i%3]
		row := m.Row(i)
		for j := range row {
			row[j] = c + rng.Normal(0, 1)
			c = -c // alternate so blobs separate in every dimension
		}
	}
	return m
}

func matricesEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestKMeansParallelismInvariant(t *testing.T) {
	for _, n := range diffSizes(t) {
		m := gaussMatrix(n, 8, uint64(n))
		var ref *KMeansResult
		for _, w := range workerGrid() {
			t.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(t *testing.T) {
				r, err := KMeansP(m, 5, 42, 0, w)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = r
					return
				}
				if r.SSD != ref.SSD {
					t.Fatalf("SSD %v != serial %v", r.SSD, ref.SSD)
				}
				if r.Iterations != ref.Iterations {
					t.Fatalf("iterations %d != serial %d", r.Iterations, ref.Iterations)
				}
				for i := range r.Assignment {
					if r.Assignment[i] != ref.Assignment[i] {
						t.Fatalf("assignment[%d] = %d != serial %d", i, r.Assignment[i], ref.Assignment[i])
					}
				}
				if !matricesEqual(r.Centroids, ref.Centroids) {
					t.Fatal("centroids differ from serial run")
				}
			})
		}
	}
}

func TestDBSCANParallelismInvariant(t *testing.T) {
	for _, n := range diffSizes(t) {
		m := gaussMatrix(n, 8, uint64(n)+100)
		var ref *DBSCANResult
		for _, w := range workerGrid() {
			t.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(t *testing.T) {
				r, err := DBSCANP(m, 5, 0, 0, w)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = r
					return
				}
				if r.Eps != ref.Eps {
					t.Fatalf("eps %v != serial %v", r.Eps, ref.Eps)
				}
				if r.Clusters != ref.Clusters || r.NoiseCount != ref.NoiseCount {
					t.Fatalf("clusters/noise %d/%d != serial %d/%d",
						r.Clusters, r.NoiseCount, ref.Clusters, ref.NoiseCount)
				}
				for i := range r.Labels {
					if r.Labels[i] != ref.Labels[i] {
						t.Fatalf("label[%d] = %d != serial %d", i, r.Labels[i], ref.Labels[i])
					}
				}
			})
		}
	}
}

// TestDBSCANGridMatchesBrute: the spatial index is an exact optimization —
// labels must match the legacy O(n²) implementation bit for bit (same
// auto-eps too, at sizes below the sampling cap).
func TestDBSCANGridMatchesBrute(t *testing.T) {
	for _, n := range []int{10, 300, 1000} {
		for _, minPts := range []int{2, 5, 20} {
			m := gaussMatrix(n, 8, uint64(n)*7+uint64(minPts))
			grid, err := DBSCANP(m, minPts, 0, 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := DBSCANBrute(m, minPts, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if grid.Eps != brute.Eps {
				t.Fatalf("n=%d minPts=%d: eps %v != brute %v", n, minPts, grid.Eps, brute.Eps)
			}
			if grid.Clusters != brute.Clusters || grid.NoiseCount != brute.NoiseCount {
				t.Fatalf("n=%d minPts=%d: clusters/noise %d/%d != brute %d/%d",
					n, minPts, grid.Clusters, grid.NoiseCount, brute.Clusters, brute.NoiseCount)
			}
			for i := range grid.Labels {
				if grid.Labels[i] != brute.Labels[i] {
					t.Fatalf("n=%d minPts=%d: label[%d] = %d, brute %d",
						n, minPts, i, grid.Labels[i], brute.Labels[i])
				}
			}
		}
	}
}

// TestGridNeighborsMatchBrute checks the index at the neighbor-list level,
// including tie distances exactly at eps.
func TestGridNeighborsMatchBrute(t *testing.T) {
	m := gaussMatrix(400, 2, 9)
	eps := 1.5
	g := newGridIndex(m, eps)
	eps2 := eps * eps
	for i := 0; i < m.Rows; i++ {
		got := g.neighbors(i, nil)
		var want []int32
		for j := 0; j < m.Rows; j++ {
			if i != j && sqDist(m.Row(i), m.Row(j)) <= eps2 {
				want = append(want, int32(j))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("point %d: %d neighbors, brute %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("point %d: neighbors[%d] = %d, brute %d", i, k, got[k], want[k])
			}
		}
	}
}

func TestPCAParallelismInvariant(t *testing.T) {
	for _, n := range diffSizes(t) {
		m := gaussMatrix(n, 12, uint64(n)+200)
		Standardize(m)
		var ref *Matrix
		for _, w := range workerGrid() {
			out := PCAP(m, 3, w)
			if ref == nil {
				ref = out
				continue
			}
			if !matricesEqual(out, ref) {
				t.Fatalf("n=%d workers=%d: PCA output differs from serial", n, w)
			}
		}
	}
}

func TestStandardizeParallelismInvariant(t *testing.T) {
	for _, n := range diffSizes(t) {
		var ref *Matrix
		for _, w := range workerGrid() {
			m := gaussMatrix(n, 10, uint64(n)+300)
			StandardizeP(m, w)
			if ref == nil {
				ref = m
				continue
			}
			if !matricesEqual(m, ref) {
				t.Fatalf("n=%d workers=%d: standardized matrix differs from serial", n, w)
			}
		}
	}
}

func TestFeaturesParallelismInvariant(t *testing.T) {
	steps := syntheticSteps(500, 40)
	var refM *Matrix
	var refKeys []trace.OpKey
	for _, w := range workerGrid() {
		m, keys := FeaturesP(steps, w)
		if refM == nil {
			refM, refKeys = m, keys
			continue
		}
		if len(keys) != len(refKeys) {
			t.Fatalf("workers=%d: %d keys, serial %d", w, len(keys), len(refKeys))
		}
		for i := range keys {
			if keys[i] != refKeys[i] {
				t.Fatalf("workers=%d: keys[%d] = %v, serial %v", w, i, keys[i], refKeys[i])
			}
		}
		if !matricesEqual(m, refM) {
			t.Fatalf("workers=%d: feature matrix differs from serial", w)
		}
	}
}

// TestSweepsParallelismInvariant covers the composed analyzer paths the
// acceptance criteria exercise end to end.
func TestSweepsParallelismInvariant(t *testing.T) {
	m := gaussMatrix(600, 8, 77)
	Standardize(m)
	var refSSD []float64
	var refRatios []float64
	for _, w := range workerGrid() {
		ssd, err := SSDSweepP(m, 8, 1, 0, w)
		if err != nil {
			t.Fatal(err)
		}
		_, ratios, err := NoiseSweepP(m, 80, 25, 0, w)
		if err != nil {
			t.Fatal(err)
		}
		if refSSD == nil {
			refSSD, refRatios = ssd, ratios
			continue
		}
		for i := range ssd {
			if ssd[i] != refSSD[i] {
				t.Fatalf("workers=%d: SSD[%d] = %v, serial %v", w, i, ssd[i], refSSD[i])
			}
		}
		for i := range ratios {
			if ratios[i] != refRatios[i] {
				t.Fatalf("workers=%d: noise ratio[%d] = %v, serial %v", w, i, ratios[i], refRatios[i])
			}
		}
	}
}

// syntheticSteps builds aggregated step stats with a rotating op
// vocabulary, for feature-extraction tests.
func syntheticSteps(n, vocab int) []*trace.StepStat {
	rng := prng.New(123)
	steps := make([]*trace.StepStat, n)
	for i := range steps {
		s := trace.NewStepStat(int64(i))
		for j := 0; j < 12; j++ {
			op := (i*7 + j*j) % vocab
			s.Observe(trace.Event{
				Name:   fmt.Sprintf("op%03d", op),
				Device: trace.TPU,
				Start:  0,
				Dur:    1 + simclock.Duration(rng.Intn(500)),
				Step:   int64(i),
			})
		}
		steps[i] = s
	}
	return steps
}
