package cluster

// Streaming (mini-batch) k-means for the online analyzer: Sculley-style
// incremental centroid refinement over a record stream. Unlike KMeansP,
// which needs the whole feature matrix resident, StreamKMeans holds
// O(k·dims + batch·dims) state regardless of how many points it has
// seen — the property the streaming phase analyzer's bounded-memory
// contract depends on.
//
// Determinism contract: the model state after n observations is a pure
// function of the observation sequence (and the seed). Seeding runs
// k-means++ over the first full buffer with the package PRNG, updates
// apply per point in buffer order with 1/count learning rates, and no
// wall clock or global randomness is consulted anywhere — so feeding
// the same points in any chunking yields bit-identical centroids.

import (
	"fmt"

	"repro/internal/prng"
)

// DefaultStreamBatch is the mini-batch size: how many points buffer up
// before one centroid update pass.
const DefaultStreamBatch = 32

// StreamKMeans is an incremental mini-batch k-means model.
type StreamKMeans struct {
	k, dims int
	batch   int

	buf  []float64 // batch×dims staging buffer
	bufN int       // points currently staged

	centroids []float64 // k×dims, valid once seeded
	counts    []int64   // per-centroid assignment counts (learning rate)
	seeded    bool
	seen      int64

	rng *prng.Source
}

// NewStreamKMeans builds a model with k centroids over dims-dimensional
// points. batch <= 0 takes DefaultStreamBatch.
func NewStreamKMeans(k, dims, batch int, seed uint64) *StreamKMeans {
	if k < 1 {
		panic(fmt.Sprintf("cluster: stream k-means k must be >= 1, got %d", k))
	}
	if dims < 1 {
		panic(fmt.Sprintf("cluster: stream k-means dims must be >= 1, got %d", dims))
	}
	if batch <= 0 {
		batch = DefaultStreamBatch
	}
	if batch < k {
		batch = k
	}
	return &StreamKMeans{
		k: k, dims: dims, batch: batch,
		buf:       make([]float64, batch*dims),
		centroids: make([]float64, k*dims),
		counts:    make([]int64, k),
		rng:       prng.New(seed),
	}
}

// K returns the centroid count.
func (s *StreamKMeans) K() int { return s.k }

// Seen returns how many points have been observed.
func (s *StreamKMeans) Seen() int64 { return s.seen }

// Seeded reports whether the centroids are initialized (first full
// buffer processed, or Flush called on a partial one).
func (s *StreamKMeans) Seeded() bool { return s.seeded }

// Observe folds one point into the model, triggering a mini-batch
// update when the staging buffer fills. The point is copied; the caller
// may reuse the slice.
func (s *StreamKMeans) Observe(x []float64) {
	if len(x) != s.dims {
		panic(fmt.Sprintf("cluster: stream k-means point has %d dims, want %d", len(x), s.dims))
	}
	copy(s.buf[s.bufN*s.dims:], x)
	s.bufN++
	s.seen++
	if s.bufN == s.batch {
		s.Flush()
	}
}

// Flush applies any staged points now: the first flush seeds the
// centroids with k-means++ over the buffer, later flushes run one
// mini-batch gradient pass. A no-op on an empty buffer.
func (s *StreamKMeans) Flush() {
	if s.bufN == 0 {
		return
	}
	if !s.seeded {
		s.seedFromBuffer()
		s.seeded = true
	}
	for i := 0; i < s.bufN; i++ {
		x := s.buf[i*s.dims : (i+1)*s.dims]
		c := s.nearest(x)
		s.counts[c]++
		eta := 1 / float64(s.counts[c])
		crow := s.centroids[c*s.dims : (c+1)*s.dims]
		for j := range crow {
			crow[j] += eta * (x[j] - crow[j])
		}
	}
	s.bufN = 0
}

// seedFromBuffer runs k-means++ over the staged points. A buffer
// smaller than k re-picks points (duplicate centroids then separate
// under later updates).
func (s *StreamKMeans) seedFromBuffer() {
	n := s.bufN
	row := func(i int) []float64 { return s.buf[i*s.dims : (i+1)*s.dims] }
	copy(s.centroids[:s.dims], row(s.rng.Intn(n)))
	d2 := make([]float64, n)
	for c := 1; c < s.k; c++ {
		newest := s.centroids[(c-1)*s.dims : c*s.dims]
		var total float64
		for i := 0; i < n; i++ {
			d := sqDist(row(i), newest)
			if c == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			copy(s.centroids[c*s.dims:(c+1)*s.dims], row(s.rng.Intn(n)))
			continue
		}
		target := s.rng.Float64() * total
		var acc float64
		pick := n - 1
		for i := 0; i < n; i++ {
			acc += d2[i]
			if acc >= target {
				pick = i
				break
			}
		}
		copy(s.centroids[c*s.dims:(c+1)*s.dims], row(pick))
	}
}

// nearest returns the index of the closest centroid to x.
func (s *StreamKMeans) nearest(x []float64) int {
	best, bestD := 0, sqDist(x, s.centroids[:s.dims])
	for c := 1; c < s.k; c++ {
		if d := sqDist(x, s.centroids[c*s.dims:(c+1)*s.dims]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Assign labels x with its nearest centroid, or -1 before seeding.
// Staged-but-unflushed points do not influence the answer, so Assign is
// read-only and chunk-invariant.
func (s *StreamKMeans) Assign(x []float64) int {
	if !s.seeded {
		return -1
	}
	if len(x) != s.dims {
		panic(fmt.Sprintf("cluster: stream k-means point has %d dims, want %d", len(x), s.dims))
	}
	return s.nearest(x)
}

// Centroid returns a copy of centroid c (nil before seeding).
func (s *StreamKMeans) Centroid(c int) []float64 {
	if !s.seeded || c < 0 || c >= s.k {
		return nil
	}
	return append([]float64(nil), s.centroids[c*s.dims:(c+1)*s.dims]...)
}

// StateBytes estimates the model's resident memory — constant in the
// number of observed points.
func (s *StreamKMeans) StateBytes() int64 {
	return int64(len(s.buf)+len(s.centroids))*8 + int64(len(s.counts))*8 + 64
}
