package cluster

import (
	"context"
	"math"

	"repro/internal/parallel"
	"repro/internal/prng"
)

// PCA projects the (already standardized) matrix onto its top-k principal
// components using power iteration with deflation — the dimensional
// reduction step the paper applies before k-means.
//
// If k >= m.Cols the input is returned unchanged (projection would be a
// rotation with no reduction, and the clustering metrics are rotation-
// invariant anyway).
func PCA(m *Matrix, k int) *Matrix {
	return PCAP(m, k, 0)
}

// PCAP is PCA with an explicit worker bound (workers <= 0 means
// GOMAXPROCS, 1 means fully serial). The covariance accumulation and the
// final projection fan out over fixed-size row chunks; covariance
// partials merge in chunk order, so the output is bit-identical for
// every worker count.
func PCAP(m *Matrix, k, workers int) *Matrix {
	if m.Rows == 0 || k >= m.Cols || k <= 0 {
		return m
	}
	pool := parallel.New(workers)
	cov := covariance(m, pool)
	d := m.Cols
	components := make([][]float64, 0, k)
	rng := prng.New(0x9ca)

	work := make([]float64, d)
	for c := 0; c < k; c++ {
		// Power iteration for the dominant eigenvector of the (deflated)
		// covariance.
		v := make([]float64, d)
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
		normalize(v)
		var lambda float64
		for iter := 0; iter < 100; iter++ {
			matVec(cov, v, work)
			l := norm(work)
			if l == 0 {
				break
			}
			for i := range v {
				v[i] = work[i] / l
			}
			if math.Abs(l-lambda) < 1e-9*math.Max(1, l) {
				lambda = l
				break
			}
			lambda = l
		}
		if lambda == 0 {
			break
		}
		components = append(components, append([]float64(nil), v...))
		// Deflate: cov -= λ v vᵀ.
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cov[i*d+j] -= lambda * v[i] * v[j]
			}
		}
	}
	out := NewMatrix(m.Rows, len(components))
	_ = pool.Run(context.Background(), m.Rows, parChunk, func(ci, lo, hi int) error {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for c, comp := range components {
				var dot float64
				for j := range row {
					dot += row[j] * comp[j]
				}
				out.Set(i, c, dot)
			}
		}
		return nil
	})
	return out
}

// covariance returns the d×d covariance matrix (rows assumed centered —
// Standardize guarantees it). Row chunks accumulate into per-chunk
// partial matrices merged in chunk order; covChunk is larger than
// parChunk so the d² partials stay small relative to the input.
func covariance(m *Matrix, pool *parallel.Pool) []float64 {
	d := m.Cols
	partials, _ := parallel.Map(pool, context.Background(), m.Rows, covChunk,
		func(ci, lo, hi int) ([]float64, error) {
			part := make([]float64, d*d)
			for r := lo; r < hi; r++ {
				row := m.Row(r)
				for i := 0; i < d; i++ {
					if row[i] == 0 {
						continue
					}
					for j := i; j < d; j++ {
						part[i*d+j] += row[i] * row[j]
					}
				}
			}
			return part, nil
		})
	cov := make([]float64, d*d)
	for _, part := range partials {
		for i := range cov {
			cov[i] += part[i]
		}
	}
	scale := 1 / float64(maxInt(1, m.Rows-1))
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i*d+j] *= scale
			cov[j*d+i] = cov[i*d+j]
		}
	}
	return cov
}

func matVec(a []float64, x, out []float64) {
	d := len(x)
	for i := 0; i < d; i++ {
		var s float64
		row := a[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			s += row[j] * x[j]
		}
		out[i] = s
	}
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
