package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/parallel"
)

// Noise is the DBSCAN label for unclustered points.
const Noise = -1

// DBSCANResult holds one DBSCAN clustering.
type DBSCANResult struct {
	MinPts     int
	Eps        float64
	Labels     []int // cluster id per row, Noise for outliers
	Clusters   int
	NoiseCount int
}

// NoiseRatio returns the fraction of unlabeled (noise) points — the metric
// the paper sweeps in Figure 5.
func (r *DBSCANResult) NoiseRatio() float64 {
	if len(r.Labels) == 0 {
		return 0
	}
	return float64(r.NoiseCount) / float64(len(r.Labels))
}

// dbscanBaseBytes is the per-point cost of the always-allocated DBSCAN
// structures: label (8), visited flag (1), cell key (24), cell-list entry
// (4), neighbor-list header (24), rounded up for map overhead.
const dbscanBaseBytes = 64

// DBSCAN clusters the matrix with the classic density algorithm, using a
// spatial grid index for the eps-neighborhood queries (exact — the labels
// match the brute-force scan bit for bit). eps <= 0 selects it
// automatically from the 4-NN distance distribution. budget bounds the
// working memory, including the density-dependent neighbor lists (0
// disables the check).
func DBSCAN(m *Matrix, minPts int, eps float64, budget int64) (*DBSCANResult, error) {
	return DBSCANP(m, minPts, eps, budget, 0)
}

// DBSCANP is DBSCAN with an explicit worker bound: the neighbor queries
// fan out across workers goroutines (workers <= 0 means GOMAXPROCS,
// 1 means fully serial). The result is bit-identical for every worker
// count: neighbor lists are built into disjoint per-point slots and the
// cluster expansion consumes them in a fixed order.
func DBSCANP(m *Matrix, minPts int, eps float64, budget int64, workers int) (*DBSCANResult, error) {
	if minPts < 1 {
		return nil, fmt.Errorf("cluster: minPts must be >= 1, got %d", minPts)
	}
	n := m.Rows
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty matrix")
	}
	need := int64(n) * dbscanBaseBytes
	if err := validateBudget(need, budget, "dbscan"); err != nil {
		return nil, err
	}
	pool := parallel.New(workers)
	if eps <= 0 {
		eps = autoEps(m, pool)
	}

	grid := newGridIndex(m, eps)

	// Neighbor lists grow with density; account for them against the
	// budget as they materialize. entryLimit is in int32 entries.
	entryLimit := int64(math.MaxInt64)
	if budget > 0 {
		entryLimit = (budget - need) / 4
	}
	var entries atomic.Int64
	neighbors := make([][]int32, n)
	err := pool.Run(context.Background(), n, parChunk, func(ci, lo, hi int) error {
		var local int64
		for i := lo; i < hi; i++ {
			neighbors[i] = grid.neighbors(i, nil)
			local += int64(len(neighbors[i]))
		}
		if entries.Add(local) > entryLimit {
			return fmt.Errorf("%w: dbscan neighbor lists exceed %d bytes", ErrMemoryBudget, budget)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	labels := expand(neighbors, minPts)
	noise := 0
	for _, l := range labels {
		if l == Noise {
			noise++
		}
	}
	clusters := 0
	for _, l := range labels {
		if l >= clusters {
			clusters = l + 1
		}
	}
	return &DBSCANResult{
		MinPts: minPts, Eps: eps, Labels: labels,
		Clusters: clusters, NoiseCount: noise,
	}, nil
}

// expand runs the sequential cluster-growing pass over precomputed
// neighbor lists. With each list ascending, the visit order — and thus
// the labeling — is identical to the classic textbook algorithm.
func expand(neighbors [][]int32, minPts int) []int {
	n := len(neighbors)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)
	cluster := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		if len(neighbors[i])+1 < minPts {
			continue // not a core point (may later be claimed as border)
		}
		// Expand a new cluster from this core point.
		labels[i] = cluster
		queue := append([]int32(nil), neighbors[i]...)
		for qi := 0; qi < len(queue); qi++ {
			p := int(queue[qi])
			if labels[p] == Noise {
				labels[p] = cluster // border or core point joins
			}
			if visited[p] {
				continue
			}
			visited[p] = true
			if len(neighbors[p])+1 >= minPts {
				queue = append(queue, neighbors[p]...)
			}
		}
		cluster++
	}
	return labels
}

// DBSCANBrute is the legacy O(n²) implementation, kept as the reference
// the differential tests and cmd/paperbench compare the grid-indexed path
// against. budget bounds the quadratic distance work as it always did.
func DBSCANBrute(m *Matrix, minPts int, eps float64, budget int64) (*DBSCANResult, error) {
	if minPts < 1 {
		return nil, fmt.Errorf("cluster: minPts must be >= 1, got %d", minPts)
	}
	n := m.Rows
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty matrix")
	}
	need := int64(n) * int64(n) * 8
	if err := validateBudget(need, budget, "dbscan-brute"); err != nil {
		return nil, err
	}
	if eps <= 0 {
		eps = autoEps(m, parallel.New(1))
	}
	eps2 := eps * eps

	neighbors := make([][]int32, n)
	for i := 0; i < n; i++ {
		ri := m.Row(i)
		for j := i + 1; j < n; j++ {
			if sqDist(ri, m.Row(j)) <= eps2 {
				neighbors[i] = append(neighbors[i], int32(j))
				neighbors[j] = append(neighbors[j], int32(i))
			}
		}
	}
	labels := expand(neighbors, minPts)
	noise := 0
	for _, l := range labels {
		if l == Noise {
			noise++
		}
	}
	clusters := 0
	for _, l := range labels {
		if l >= clusters {
			clusters = l + 1
		}
	}
	return &DBSCANResult{
		MinPts: minPts, Eps: eps, Labels: labels,
		Clusters: clusters, NoiseCount: noise,
	}, nil
}

// autoEpsMaxSample caps the number of rows whose exact 4-NN distance the
// eps heuristic computes. Above the cap a deterministic stride-subsample
// stands in for the full population; each sampled row is still measured
// against every row, so the per-row statistic stays exact.
const autoEpsMaxSample = 2048

// autoEps picks ε as the 90th percentile of 4-NN distances — a standard
// heuristic that keeps the bulk of a dense phase connected while leaving
// genuinely unusual steps as noise. The per-row scans fan out across the
// pool; results are written to disjoint slots, so the choice is
// deterministic for every worker count.
func autoEps(m *Matrix, pool *parallel.Pool) float64 {
	n := m.Rows
	if n < 2 {
		return 1
	}
	stride := 1
	count := n
	if n > autoEpsMaxSample {
		stride = (n + autoEpsMaxSample - 1) / autoEpsMaxSample
		count = (n + stride - 1) / stride
	}
	const kth = 4
	kdist := make([]float64, count)
	_ = pool.Run(context.Background(), count, parChunk, func(ci, lo, hi int) error {
		for s := lo; s < hi; s++ {
			i := s * stride
			ri := m.Row(i)
			// Running top-4 smallest squared distances (ascending).
			best := [kth]float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				d := sqDist(ri, m.Row(j))
				if d >= best[kth-1] {
					continue
				}
				p := kth - 1
				for p > 0 && best[p-1] > d {
					best[p] = best[p-1]
					p--
				}
				best[p] = d
			}
			idx := kth - 1
			if n-1 < kth {
				idx = n - 2
			}
			kdist[s] = best[idx]
		}
		return nil
	})
	sort.Float64s(kdist)
	v := kdist[(len(kdist)*9)/10]
	if v <= 0 || math.IsInf(v, 1) {
		// Degenerate geometry (many identical rows): any positive radius
		// connects duplicates.
		return 1e-9
	}
	return math.Sqrt(v)
}

// NoiseSweep runs DBSCAN across the paper's min-samples grid (5 to maxPts
// in steps of `step`) and returns the noise ratios (Figure 5's series).
func NoiseSweep(m *Matrix, maxPts, step int, budget int64) (minPts []int, ratios []float64, err error) {
	return NoiseSweepP(m, maxPts, step, budget, 0)
}

// NoiseSweepP is NoiseSweep with an explicit worker bound for each
// DBSCAN run.
func NoiseSweepP(m *Matrix, maxPts, step int, budget int64, workers int) (minPts []int, ratios []float64, err error) {
	if step < 1 {
		return nil, nil, fmt.Errorf("cluster: sweep step must be >= 1")
	}
	eps := 0.0
	for p := 5; p <= maxPts; p += step {
		r, err := DBSCANP(m, p, eps, budget, workers)
		if err != nil {
			return nil, nil, err
		}
		if eps == 0 {
			eps = r.Eps // reuse the auto choice across the sweep
		}
		minPts = append(minPts, p)
		ratios = append(ratios, r.NoiseRatio())
	}
	return minPts, ratios, nil
}
