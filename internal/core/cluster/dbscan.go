package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Noise is the DBSCAN label for unclustered points.
const Noise = -1

// DBSCANResult holds one DBSCAN clustering.
type DBSCANResult struct {
	MinPts     int
	Eps        float64
	Labels     []int // cluster id per row, Noise for outliers
	Clusters   int
	NoiseCount int
}

// NoiseRatio returns the fraction of unlabeled (noise) points — the metric
// the paper sweeps in Figure 5.
func (r *DBSCANResult) NoiseRatio() float64 {
	if len(r.Labels) == 0 {
		return 0
	}
	return float64(r.NoiseCount) / float64(len(r.Labels))
}

// DBSCAN clusters the matrix with the classic density algorithm. eps <= 0
// selects it automatically from the 4-NN distance distribution. budget
// bounds the O(n²) distance work (0 disables the check).
func DBSCAN(m *Matrix, minPts int, eps float64, budget int64) (*DBSCANResult, error) {
	if minPts < 1 {
		return nil, fmt.Errorf("cluster: minPts must be >= 1, got %d", minPts)
	}
	n := m.Rows
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty matrix")
	}
	// The neighbor-set pass holds the pairwise distance structure; that
	// is the allocation that blows up on large runs.
	need := int64(n) * int64(n) * 8
	if err := validateBudget(need, budget, "dbscan"); err != nil {
		return nil, err
	}
	if eps <= 0 {
		eps = autoEps(m)
	}
	eps2 := eps * eps

	// Precompute neighbor lists.
	neighbors := make([][]int32, n)
	for i := 0; i < n; i++ {
		ri := m.Row(i)
		for j := i + 1; j < n; j++ {
			if sqDist(ri, m.Row(j)) <= eps2 {
				neighbors[i] = append(neighbors[i], int32(j))
				neighbors[j] = append(neighbors[j], int32(i))
			}
		}
	}

	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)
	cluster := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		if len(neighbors[i])+1 < minPts {
			continue // not a core point (may later be claimed as border)
		}
		// Expand a new cluster from this core point.
		labels[i] = cluster
		queue := append([]int32(nil), neighbors[i]...)
		for qi := 0; qi < len(queue); qi++ {
			p := int(queue[qi])
			if labels[p] == Noise {
				labels[p] = cluster // border or core point joins
			}
			if visited[p] {
				continue
			}
			visited[p] = true
			if len(neighbors[p])+1 >= minPts {
				queue = append(queue, neighbors[p]...)
			}
		}
		cluster++
	}
	noise := 0
	for _, l := range labels {
		if l == Noise {
			noise++
		}
	}
	return &DBSCANResult{
		MinPts: minPts, Eps: eps, Labels: labels,
		Clusters: cluster, NoiseCount: noise,
	}, nil
}

// autoEps picks ε as the 90th percentile of 4-NN distances — a standard
// heuristic that keeps the bulk of a dense phase connected while leaving
// genuinely unusual steps as noise.
func autoEps(m *Matrix) float64 {
	n := m.Rows
	if n < 2 {
		return 1
	}
	const kth = 4
	kdist := make([]float64, 0, n)
	d := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		d = d[:0]
		ri := m.Row(i)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d = append(d, sqDist(ri, m.Row(j)))
		}
		sort.Float64s(d)
		idx := kth - 1
		if idx >= len(d) {
			idx = len(d) - 1
		}
		kdist = append(kdist, d[idx])
	}
	sort.Float64s(kdist)
	v := kdist[(len(kdist)*9)/10]
	if v <= 0 {
		// Degenerate geometry (many identical rows): any positive radius
		// connects duplicates.
		return 1e-9
	}
	return math.Sqrt(v)
}

// NoiseSweep runs DBSCAN across the paper's min-samples grid (5 to maxPts
// in steps of `step`) and returns the noise ratios (Figure 5's series).
func NoiseSweep(m *Matrix, maxPts, step int, budget int64) (minPts []int, ratios []float64, err error) {
	if step < 1 {
		return nil, nil, fmt.Errorf("cluster: sweep step must be >= 1")
	}
	eps := 0.0
	for p := 5; p <= maxPts; p += step {
		r, err := DBSCAN(m, p, eps, budget)
		if err != nil {
			return nil, nil, err
		}
		if eps == 0 {
			eps = r.Eps // reuse the auto choice across the sweep
		}
		minPts = append(minPts, p)
		ratios = append(ratios, r.NoiseRatio())
	}
	return minPts, ratios, nil
}
