package cluster

import (
	"math"
)

// SimPoint selects its cluster count with the Bayesian information
// criterion rather than the elbow heuristic; the paper discusses the
// difference explicitly ("SimPoint uses the Bayesian information criterion
// (BIC) to measure the probability of clustering ... TPUPoint instead
// employs the elbow method"). This file provides the BIC alternative so
// the two selection rules can be compared on the same sweeps.

// BIC scores one k-means clustering of the matrix under the spherical
// Gaussian model used by X-means (Pelleg & Moore, 2000): higher is better.
func BIC(m *Matrix, r *KMeansResult) float64 {
	n := float64(m.Rows)
	d := float64(m.Cols)
	k := float64(r.K)
	if m.Rows <= r.K {
		return math.Inf(-1)
	}
	// Maximum-likelihood variance estimate across all clusters.
	variance := r.SSD / (float64(m.Rows-r.K) * d)
	if variance <= 0 {
		variance = 1e-12
	}
	var logL float64
	for c := 0; c < r.K; c++ {
		nc := float64(r.Sizes[c])
		if nc == 0 {
			continue
		}
		logL += nc*math.Log(nc) -
			nc*math.Log(n) -
			nc*d/2*math.Log(2*math.Pi*variance) -
			(nc-1)*d/2
	}
	params := k * (d + 1) // centroids plus the shared variance per cluster
	return logL - params/2*math.Log(n)
}

// BICSweep runs k-means for k = 1..kMax and returns the BIC score series.
func BICSweep(m *Matrix, kMax int, seed uint64, budget int64) ([]float64, error) {
	return BICSweepP(m, kMax, seed, budget, 0)
}

// BICSweepP is BICSweep with an explicit worker bound for each k-means
// run.
func BICSweepP(m *Matrix, kMax int, seed uint64, budget int64, workers int) ([]float64, error) {
	out := make([]float64, 0, kMax)
	for k := 1; k <= kMax; k++ {
		r, err := KMeansP(m, k, seed+uint64(k), budget, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, BIC(m, r))
	}
	return out, nil
}

// BestBIC returns the 1-based k with the highest BIC score.
func BestBIC(scores []float64) int {
	best, bestV := 1, math.Inf(-1)
	for i, v := range scores {
		if v > bestV {
			best, bestV = i+1, v
		}
	}
	return best
}
