package cluster

import "slices"

// maxGridDims caps how many leading coordinates the spatial index bins.
// After PCA the leading columns carry the most variance, so binning on
// them prunes the bulk of the candidate pairs; the remaining dimensions
// are handled by the exact distance check on each candidate.
const maxGridDims = 3

// gridKey identifies one cell: the floor(x/eps) quantization of the first
// gdims coordinates (unused slots stay zero).
type gridKey [maxGridDims]int64

// gridIndex is an exact eps-neighborhood index: points are binned into
// cells of side eps on the first gdims coordinates. Any two points within
// eps of each other in the full space differ by at most one cell per
// binned coordinate, so scanning the 3^gdims adjacent cells and verifying
// with the exact distance yields precisely the brute-force neighbor set.
type gridIndex struct {
	m     *Matrix
	eps2  float64
	inv   float64 // 1/eps
	gdims int
	keys  []gridKey           // per-point cell, cached
	cells map[gridKey][]int32 // cell -> member points, ascending
}

// newGridIndex builds the index in one O(n) pass. Points are inserted in
// row order, so every cell's member list is ascending.
func newGridIndex(m *Matrix, eps float64) *gridIndex {
	g := &gridIndex{
		m:     m,
		eps2:  eps * eps,
		inv:   1 / eps,
		gdims: min(m.Cols, maxGridDims),
		keys:  make([]gridKey, m.Rows),
		cells: make(map[gridKey][]int32, m.Rows/4+1),
	}
	for i := 0; i < m.Rows; i++ {
		k := g.cellOf(m.Row(i))
		g.keys[i] = k
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

func (g *gridIndex) cellOf(row []float64) gridKey {
	var k gridKey
	for d := 0; d < g.gdims; d++ {
		// Truncate-toward-negative-infinity without math.Floor's call
		// overhead; coordinates are standardized so |x/eps| stays far
		// below the int64 range.
		q := int64(row[d] * g.inv)
		if row[d]*g.inv < float64(q) {
			q--
		}
		k[d] = q
	}
	return k
}

// neighbors returns every point within eps of point i (excluding i),
// sorted ascending — the same list, in the same order, that the brute
// O(n²) scan produces. buf is an optional reusable backing array.
func (g *gridIndex) neighbors(i int, buf []int32) []int32 {
	out := buf[:0]
	row := g.m.Row(i)
	base := g.keys[i]

	// Offset ranges: ±1 on binned coordinates, pinned to 0 beyond gdims.
	var span [maxGridDims]int64
	for d := 0; d < g.gdims; d++ {
		span[d] = 1
	}
	var probe gridKey
	for o0 := -span[0]; o0 <= span[0]; o0++ {
		probe[0] = base[0] + o0
		for o1 := -span[1]; o1 <= span[1]; o1++ {
			probe[1] = base[1] + o1
			for o2 := -span[2]; o2 <= span[2]; o2++ {
				probe[2] = base[2] + o2
				for _, j := range g.cells[probe] {
					if j == int32(i) {
						continue
					}
					if sqDistBounded(row, g.m.Row(int(j)), g.eps2) {
						out = append(out, j)
					}
				}
			}
		}
	}
	slices.Sort(out)
	return out
}

// sqDistBounded reports whether the squared distance of a and b is at
// most bound, bailing out as soon as the partial sum exceeds it. Terms
// are non-negative, so the verdict matches the full sqDist comparison
// exactly.
func sqDistBounded(a, b []float64, bound float64) bool {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
		if s > bound {
			return false
		}
	}
	return true
}
