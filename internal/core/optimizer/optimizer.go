// Package optimizer implements TPUPoint-Optimizer (Section VII): the
// online, automatic workload-tuning tool.
//
// The optimizer runs the workload under instrumentation and, once the
// training loop has entered its performance-critical phase, hill-climbs
// the program's *adjustable parameters* — the input-pipeline buffer sizes
// and thread counts — one at a time:
//
//   - Program analysis discovers the adjustable parameters and rejects any
//     whose altered values fail validation (the paper's "if any of these
//     adjustable parameters cause errors when altered, TPUPoint-Optimizer
//     will not treat them as adjustable").
//   - Critical-phase detection fires when the current phase accounts for
//     more than half of aggregated execution time (the paper's second
//     trigger; the first — seeing the infeed/fusion/reshape/outfeed
//     pattern — always coincides with it on these workloads).
//   - Each candidate value is probed for ProbeSteps steps; an accepted
//     move keeps pushing the same direction, a rejected one restores the
//     checkpointed value and charges a restore stall.
//   - While tuning, every step pays an instrumentation overhead (the
//     checkpoint-before-each-call instrumentation of Section VII-A).
//
// Results report both the measured speedup on the compressed simulation
// and the paper-scale projection (full PaperSteps run plus TPUPoint's
// fixed post-processing), which is what reproduces Figure 14's "only
// workloads over twenty minutes benefit" finding.
package optimizer

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/estimator"
	"repro/internal/host"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/tpu"
	"repro/internal/workloads"
)

// Options configure an optimization run.
type Options struct {
	Version tpu.Version
	Steps   int // override the workload's TrainSteps
	Seed    uint64

	// WarmupSteps is the observation window before tuning starts
	// (critical-phase detection needs history). Default 30.
	WarmupSteps int

	// ProbeSteps is how long each candidate parameter value is measured.
	// Default 14.
	ProbeSteps int

	// SettleSteps are excluded from the head of each probe window so the
	// pipeline-restart transient after a parameter rewrite does not bias
	// the measurement. Default 4; negative requests zero settle steps
	// (consistent with profiler.Options: zero means default, negative
	// disables).
	SettleSteps int

	// ImproveEps is the minimum relative step-period improvement that
	// accepts a move. Default 0.02; negative accepts any strict
	// improvement (eps 0).
	ImproveEps float64

	// InstrumentationUs is the per-step host overhead while the
	// optimizer is instrumenting and tuning. Default 250µs; negative
	// models free instrumentation (0µs).
	InstrumentationUs float64

	// RestoreUs is the checkpoint-restore stall charged when a move is
	// rolled back. Default 300000µs (0.3s).
	RestoreUs float64

	// PostProcessUs is TPUPoint's fixed post-run processing time, added
	// to the paper-scale projection. Default 90e6µs (90s).
	PostProcessUs float64

	// Obs, when set, receives the optimizer's metrics (probes started /
	// accepted / rolled back, restore stalls) and the per-axis move
	// history as structured events.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Version == 0 {
		o.Version = tpu.V2
	}
	if o.WarmupSteps == 0 {
		o.WarmupSteps = 30
	}
	if o.ProbeSteps == 0 {
		o.ProbeSteps = 14
	}
	if o.SettleSteps == 0 {
		o.SettleSteps = 4
	} else if o.SettleSteps < 0 {
		o.SettleSteps = 0
	}
	if o.ImproveEps == 0 {
		o.ImproveEps = 0.02
	} else if o.ImproveEps < 0 {
		o.ImproveEps = 0
	}
	if o.InstrumentationUs == 0 {
		o.InstrumentationUs = 250
	} else if o.InstrumentationUs < 0 {
		o.InstrumentationUs = 0
	}
	if o.RestoreUs == 0 {
		o.RestoreUs = 300_000
	}
	if o.PostProcessUs == 0 {
		o.PostProcessUs = 90e6
	}
	return o
}

// Move records one tuning decision.
type Move struct {
	Param        string
	From, To     int
	PeriodBefore float64 // mean step period µs over the probe window
	PeriodAfter  float64
	Accepted     bool
}

// Result summarizes an optimization run against its baseline.
type Result struct {
	Workload string
	Version  tpu.Version

	BaselineTime  simclock.Duration
	OptimizedTime simclock.Duration

	// MeasuredSpeedup compares the compressed simulation runs directly.
	MeasuredSpeedup float64

	// ProjectedSpeedup extrapolates both runs to the paper's full step
	// count using steady-state step periods and charges the optimizer's
	// fixed post-processing — Figure 14's metric.
	ProjectedSpeedup float64

	BaselineIdle, OptimizedIdle float64
	BaselineMXU, OptimizedMXU   float64

	InitialParams, FinalParams host.Params
	Moves                      []Move

	// CriticalPhaseStep is the step at which tuning engaged.
	CriticalPhaseStep int64
}

// axis is one adjustable parameter: how to read, write, and step it.
type axis struct {
	name string
	get  func(host.Params) int
	set  func(host.Params, int) host.Params
	grow func(int) int // next candidate in the growing direction
}

// adjustableAxes enumerates the tunable pipeline parameters, in the order
// the optimizer explores them.
func adjustableAxes() []axis {
	dbl := func(v int) int { return v * 2 }
	return []axis{
		{
			name: "DecodeThreads",
			get:  func(p host.Params) int { return p.DecodeThreads },
			set:  func(p host.Params, v int) host.Params { p.DecodeThreads = v; return p },
			grow: dbl,
		},
		{
			name: "PrefetchDepth",
			get:  func(p host.Params) int { return p.PrefetchDepth },
			set:  func(p host.Params, v int) host.Params { p.PrefetchDepth = v; return p },
			grow: dbl,
		},
		{
			name: "ReaderThreads",
			get:  func(p host.Params) int { return p.ReaderThreads },
			set:  func(p host.Params, v int) host.Params { p.ReaderThreads = v; return p },
			grow: dbl,
		},
		{
			name: "InfeedThreads",
			get:  func(p host.Params) int { return p.InfeedThreads },
			set:  func(p host.Params, v int) host.Params { p.InfeedThreads = v; return p },
			grow: func(v int) int { return v + 1 },
		},
		{
			name: "ShuffleBuffer",
			get:  func(p host.Params) int { return p.ShuffleBuffer },
			set:  func(p host.Params, v int) host.Params { p.ShuffleBuffer = v; return p },
			grow: dbl,
		},
	}
}

// AdjustableParams reports the parameter names the program analysis found
// tunable for the given starting parameters: a candidate whose first
// altered value fails validation or is clamped back is excluded.
func AdjustableParams(start host.Params, spec host.Spec) []string {
	var out []string
	for _, ax := range adjustableAxes() {
		cand := ax.set(start, ax.grow(ax.get(start)))
		if cand.Validate() != nil {
			continue
		}
		if cand.Clamp(spec) != cand {
			// The altered value is out of the host's supported range;
			// treat the parameter as saturated, not adjustable.
			continue
		}
		out = append(out, ax.name)
	}
	return out
}

// otMetrics are the optimizer's obs instruments (nil-safe).
type otMetrics struct {
	probesStarted *obs.Counter
	accepted      *obs.Counter
	rolledBack    *obs.Counter
	restoreStalls *obs.Counter
	criticalStep  *obs.Gauge
}

func newOTMetrics(r *obs.Registry) otMetrics {
	return otMetrics{
		probesStarted: r.Counter("optimizer.probes.started"),
		accepted:      r.Counter("optimizer.probes.accepted"),
		rolledBack:    r.Counter("optimizer.probes.rolled_back"),
		restoreStalls: r.Counter("optimizer.restore.stalls"),
		criticalStep:  r.Gauge("optimizer.critical_phase.step"),
	}
}

// tuner is the OnTrainStep state machine.
type tuner struct {
	opts Options
	axes []axis
	spec host.Spec // the workload's host — bounds every candidate value
	m    otMetrics

	state        int // 0 warmup, 1 tuning, 2 done
	lastEnd      simclock.Time
	window       []float64 // step periods in the current window
	baselineMean float64

	axisIdx   int
	probing   bool
	probeLeft int
	saved     host.Params
	cur       host.Params
	bestMean  float64

	criticalAt int64
	moves      []Move

	// Aggregated-time bookkeeping for critical-phase detection.
	totalTime simclock.Duration
	phaseTime simclock.Duration
}

const (
	stWarmup = iota
	stTuning
	stDone
)

func (t *tuner) onStep(r *estimator.Runner, step int64, st tpu.StepTiming) {
	period := float64(st.End.Sub(t.lastEnd))
	if t.lastEnd == 0 {
		period = float64(st.End.Sub(st.Start))
	}
	t.lastEnd = st.End

	stepSpan := st.End.Sub(st.Start) + st.Idle
	t.phaseTime += stepSpan // the training phase: every train step belongs
	// Aggregated execution time spans *all* phases: init, eval blocks,
	// checkpoint and summary writes (from the runner) plus training.
	// Summing only train steps into both sides made the >50% gate
	// vacuously true from the very first step.
	t.totalTime = t.phaseTime + r.NonTrainTime()

	switch t.state {
	case stWarmup:
		t.window = append(t.window, period)
		if len(t.window) < t.opts.WarmupSteps {
			return
		}
		// Critical-phase rule: the current phase holds >50% of aggregated
		// execution time. Training dominates by now.
		if float64(t.phaseTime) <= 0.5*float64(t.totalTime) {
			return
		}
		// Median, not mean: checkpoint and summary stalls land on a few
		// steps and would otherwise swamp the comparison.
		t.baselineMean = median(t.window)
		t.bestMean = t.baselineMean
		t.criticalAt = step
		t.m.criticalStep.Set(step)
		t.opts.Obs.Emit("optimizer", "critical-phase",
			fmt.Sprintf("tuning engaged at step %d (train share %.0f%%)",
				step, 100*float64(t.phaseTime)/float64(t.totalTime)))
		t.state = stTuning
		t.startProbe(r, step)
	case stTuning:
		t.probeLeft--
		if t.probeLeft < t.opts.ProbeSteps-t.opts.SettleSteps {
			// Past the settle window: this step counts.
			t.window = append(t.window, period)
		}
		if t.probeLeft > 0 {
			return
		}
		t.finishProbe(r, step, median(t.window))
	}
}

// startProbe moves to the next candidate value (or the next axis) and
// begins measuring.
func (t *tuner) startProbe(r *estimator.Runner, step int64) {
	for t.axisIdx < len(t.axes) {
		ax := t.axes[t.axisIdx]
		cand := ax.set(t.cur, ax.grow(ax.get(t.cur)))
		if cand.Validate() != nil || cand.Clamp(t.spec) != cand {
			// Not adjustable (or saturated): next axis.
			t.axisIdx++
			continue
		}
		t.saved = t.cur
		t.cur = cand
		if err := r.SetHostParams(cand); err != nil {
			// The rewrite failed outright; the parameter is not
			// adjustable. Try the next axis.
			t.cur = t.saved
			t.axisIdx++
			continue
		}
		t.window = t.window[:0]
		t.probeLeft = t.opts.ProbeSteps
		t.probing = true
		t.m.probesStarted.Inc()
		return
	}
	// All axes explored: tuning complete. Instrumentation comes off.
	t.state = stDone
	r.SetStepOverheadUs(0)
}

// finishProbe accepts or rolls back the probed value, then continues.
func (t *tuner) finishProbe(r *estimator.Runner, step int64, mean float64) {
	ax := t.axes[t.axisIdx]
	mv := Move{
		Param:        ax.name,
		From:         ax.get(t.saved),
		To:           ax.get(t.cur),
		PeriodBefore: t.bestMean,
		PeriodAfter:  mean,
	}
	if mean < t.bestMean*(1-t.opts.ImproveEps) {
		// Improved: keep it and push the same direction.
		mv.Accepted = true
		t.bestMean = mean
		t.m.accepted.Inc()
	} else {
		// No better than the incumbent: restore from checkpoint and move
		// to the next parameter.
		if err := r.SetHostParams(t.saved); err == nil {
			t.cur = t.saved
		}
		r.Stall(simclock.Duration(t.opts.RestoreUs), step)
		t.axisIdx++
		t.m.rolledBack.Inc()
		t.m.restoreStalls.Inc()
	}
	verdict := "rolled-back"
	if mv.Accepted {
		verdict = "accepted"
	}
	t.opts.Obs.Emit("optimizer", "move",
		fmt.Sprintf("%s %d->%d %s (period %.0fus -> %.0fus)",
			mv.Param, mv.From, mv.To, verdict, mv.PeriodBefore, mv.PeriodAfter))
	t.moves = append(t.moves, mv)
	t.startProbe(r, step)
}

// Optimize runs the workload twice — baseline and optimizer-instrumented —
// and reports the comparison.
func Optimize(w *workloads.Workload, opts Options) (*Result, error) {
	if w == nil {
		return nil, errors.New("optimizer: nil workload")
	}
	opts = opts.withDefaults()

	base, err := runOnce(w, opts, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("optimizer: baseline run: %w", err)
	}

	tn := &tuner{opts: opts, axes: adjustableAxes(), cur: w.HostParams,
		spec: w.Spec(), m: newOTMetrics(opts.Obs)}
	opt, err := runOnce(w, opts, tn.onStep, opts.InstrumentationUs)
	if err != nil {
		return nil, fmt.Errorf("optimizer: tuned run: %w", err)
	}

	res := &Result{
		Workload:          w.Name,
		Version:           opts.Version,
		BaselineTime:      base.TotalTime(),
		OptimizedTime:     opt.TotalTime(),
		BaselineIdle:      base.IdleFraction(),
		OptimizedIdle:     opt.IdleFraction(),
		BaselineMXU:       base.MXUUtilization(),
		OptimizedMXU:      opt.MXUUtilization(),
		InitialParams:     w.HostParams,
		FinalParams:       opt.HostParams(),
		Moves:             tn.moves,
		CriticalPhaseStep: tn.criticalAt,
	}
	res.MeasuredSpeedup = float64(res.BaselineTime) / float64(res.OptimizedTime)

	// Paper-scale projection: steady-state period × full paper step
	// count, with the tuned run charged its tuning transient and the
	// fixed post-processing.
	basePeriod := steadyPeriod(base)
	optPeriod := steadyPeriod(opt)
	full := float64(w.PaperSteps)
	tuningCost := float64(opt.TotalTime()) - float64(base.TotalTime())*optPeriod/basePeriod
	if tuningCost < 0 {
		tuningCost = 0
	}
	baseFull := basePeriod * full
	optFull := optPeriod*full + tuningCost + opts.PostProcessUs
	if optFull > 0 {
		res.ProjectedSpeedup = baseFull / optFull
	}
	return res, nil
}

// median returns the middle value of xs (mean of the middle pair for even
// lengths). It copies its input.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func runOnce(w *workloads.Workload, opts Options, hook func(*estimator.Runner, int64, tpu.StepTiming), overheadUs float64) (*estimator.Runner, error) {
	r, err := estimator.New(w, estimator.Options{
		Version:        opts.Version,
		Steps:          opts.Steps,
		Seed:           opts.Seed,
		HostParams:     &w.HostParams,
		StepOverheadUs: overheadUs,
		OnTrainStep:    hook,
		DisableEval:    true, // tuning targets the training phase
	})
	if err != nil {
		return nil, err
	}
	if err := r.Run(); err != nil {
		return nil, err
	}
	return r, nil
}

// steadyPeriod estimates the steady-state step period (µs) from the tail
// of the run's step timings.
func steadyPeriod(r *estimator.Runner) float64 {
	ts := r.StepTimings()
	n := len(ts)
	if n < 2 {
		return 1
	}
	k := n / 4
	if k < 2 {
		k = 2
	}
	if k > n-1 {
		k = n - 1
	}
	span := ts[n-1].End.Sub(ts[n-1-k].End)
	return float64(span) / float64(k)
}
