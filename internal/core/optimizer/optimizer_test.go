package optimizer

import (
	"testing"

	"repro/internal/host"
	"repro/internal/tpu"
	"repro/internal/workloads"
)

// optimize runs the optimizer on a shortened workload.
func optimize(t testing.TB, name string, naive bool, opts Options) *Result {
	t.Helper()
	w := workloads.MustGet(name)
	if naive {
		w = w.Naive()
	}
	if opts.Steps == 0 {
		opts.Steps = 250
	}
	res, err := Optimize(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOptimizerImprovesNaiveWorkload(t *testing.T) {
	res := optimize(t, "qanet-squad", true, Options{})
	if res.MeasuredSpeedup < 1.3 {
		t.Fatalf("naive speedup = %.3f, want >= 1.3", res.MeasuredSpeedup)
	}
	if res.OptimizedIdle >= res.BaselineIdle {
		t.Fatalf("idle did not drop: %.3f -> %.3f", res.BaselineIdle, res.OptimizedIdle)
	}
	if res.OptimizedMXU <= res.BaselineMXU {
		t.Fatalf("MXU util did not rise: %.3f -> %.3f", res.BaselineMXU, res.OptimizedMXU)
	}
	if res.FinalParams == res.InitialParams {
		t.Fatal("no parameter was changed")
	}
	if res.FinalParams.DecodeThreads <= res.InitialParams.DecodeThreads {
		t.Fatalf("decode threads not raised: %+v", res.FinalParams)
	}
}

func TestOptimizerModestGainOnTunedWorkload(t *testing.T) {
	// The reference models are already hand-tuned; gains must exist but
	// stay modest (the paper's ~1.12× regime), and tuning must never
	// slow the measured steady state down much.
	res := optimize(t, "retinanet-coco", false, Options{Steps: 300})
	if res.MeasuredSpeedup < 1.0 {
		t.Fatalf("tuned workload regressed: %.3f", res.MeasuredSpeedup)
	}
	if res.MeasuredSpeedup > 1.4 {
		t.Fatalf("gain on hand-tuned workload suspiciously high: %.3f", res.MeasuredSpeedup)
	}
}

func TestOptimizerCriticalPhaseDetection(t *testing.T) {
	res := optimize(t, "dcgan-cifar10", true, Options{})
	if res.CriticalPhaseStep <= 0 {
		t.Fatal("critical phase never detected")
	}
	if res.CriticalPhaseStep > 60 {
		t.Fatalf("critical phase detected only at step %d", res.CriticalPhaseStep)
	}
}

func TestOptimizerMovesRecorded(t *testing.T) {
	res := optimize(t, "qanet-squad", true, Options{})
	if len(res.Moves) == 0 {
		t.Fatal("no moves recorded")
	}
	accepted := 0
	for _, m := range res.Moves {
		if m.Param == "" || m.To == m.From {
			t.Fatalf("degenerate move %+v", m)
		}
		if m.Accepted {
			accepted++
			if m.PeriodAfter >= m.PeriodBefore {
				t.Fatalf("accepted move without improvement: %+v", m)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no move accepted on a naive workload")
	}
}

func TestOptimizerOutputUnchangedGuard(t *testing.T) {
	// The tuned run must keep validated parameters at every point; the
	// final configuration always validates and is within host limits.
	res := optimize(t, "bert-mrpc", true, Options{})
	if err := res.FinalParams.Validate(); err != nil {
		t.Fatalf("final params invalid: %v", err)
	}
	if res.FinalParams.Clamp(host.DefaultSpec()) != res.FinalParams {
		t.Fatal("final params exceed host limits")
	}
}

func TestProjectedSpeedupPenalizesShortRuns(t *testing.T) {
	// BERT-MRPC's full run is far below the post-processing cost: the
	// paper's "short workloads can take a performance hit".
	short := optimize(t, "bert-mrpc", false, Options{})
	if short.ProjectedSpeedup >= 1.0 {
		t.Fatalf("short workload projected %.3f, want < 1 (post-processing hit)", short.ProjectedSpeedup)
	}
	long := optimize(t, "retinanet-coco", false, Options{Steps: 300})
	if long.ProjectedSpeedup <= 1.0 {
		t.Fatalf("long workload projected %.3f, want > 1", long.ProjectedSpeedup)
	}
}

func TestAdjustableParams(t *testing.T) {
	// From naive settings everything has headroom.
	names := AdjustableParams(host.NaiveParams(), host.DefaultSpec())
	if len(names) != 5 {
		t.Fatalf("adjustable from naive = %v", names)
	}
	// A saturated parameter is excluded.
	p := host.DefaultParams()
	p.InfeedThreads = 8 // host cap
	names = AdjustableParams(p, host.DefaultSpec())
	for _, n := range names {
		if n == "InfeedThreads" {
			t.Fatal("saturated InfeedThreads still adjustable")
		}
	}
}

func TestOptimizeNilWorkload(t *testing.T) {
	if _, err := Optimize(nil, Options{}); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestOptimizerV3StillHelps(t *testing.T) {
	// Structure holds on TPUv3 too — gains exist for naive code, and
	// MXU gains are smaller in absolute terms than on v2 (Figure 16's
	// "pronounced change" is a v2 phenomenon).
	v2 := optimize(t, "dcgan-cifar10", true, Options{Version: tpu.V2})
	v3 := optimize(t, "dcgan-cifar10", true, Options{Version: tpu.V3})
	if v3.MeasuredSpeedup < 1.2 {
		t.Fatalf("v3 naive speedup = %.3f", v3.MeasuredSpeedup)
	}
	d2 := v2.OptimizedMXU - v2.BaselineMXU
	d3 := v3.OptimizedMXU - v3.BaselineMXU
	if d3 >= d2 {
		t.Fatalf("MXU gain on v3 (%.3f) not smaller than v2 (%.3f)", d3, d2)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %g", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %g", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %g", m)
	}
	// Robust to one large outlier.
	if m := median([]float64{10, 10, 10, 1000, 10}); m != 10 {
		t.Fatalf("outlier median = %g", m)
	}
}

func BenchmarkOptimizeNaiveDCGAN(b *testing.B) {
	w := workloads.MustGet("dcgan-cifar10").Naive()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(w, Options{Steps: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOptimizerTooShortToTune(t *testing.T) {
	// A run shorter than the warmup window: the critical phase is never
	// confirmed, no tuning happens, and the result is still coherent.
	res := optimize(t, "dcgan-mnist", false, Options{Steps: 20, WarmupSteps: 50})
	if len(res.Moves) != 0 {
		t.Fatalf("moves on a too-short run: %d", len(res.Moves))
	}
	if res.FinalParams != res.InitialParams {
		t.Fatal("params changed without tuning")
	}
	if res.MeasuredSpeedup <= 0 {
		t.Fatalf("speedup = %g", res.MeasuredSpeedup)
	}
}

func TestOptimizerSaturatedStart(t *testing.T) {
	// Starting from host-maximum parameters, every grow move is clamped:
	// the optimizer must terminate with zero accepted moves.
	w := workloads.MustGet("dcgan-cifar10")
	w.HostParams = host.Params{
		ReaderThreads: 32, DecodeThreads: 32, PrefetchDepth: 64,
		InfeedThreads: 8, ShuffleBuffer: 1 << 20,
	}
	res, err := Optimize(w, Options{Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Moves {
		if m.Accepted {
			t.Fatalf("accepted a move from saturated params: %+v", m)
		}
	}
	if res.FinalParams != w.HostParams {
		t.Fatalf("saturated params changed: %+v", res.FinalParams)
	}
}
