package optimizer

import (
	"strings"
	"testing"

	"repro/internal/host"
	"repro/internal/obs"
	"repro/internal/tpu"
	"repro/internal/workloads"
)

// optimize runs the optimizer on a shortened workload.
func optimize(t testing.TB, name string, naive bool, opts Options) *Result {
	t.Helper()
	w := workloads.MustGet(name)
	if naive {
		w = w.Naive()
	}
	if opts.Steps == 0 {
		opts.Steps = 250
	}
	res, err := Optimize(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOptimizerImprovesNaiveWorkload(t *testing.T) {
	res := optimize(t, "qanet-squad", true, Options{})
	if res.MeasuredSpeedup < 1.3 {
		t.Fatalf("naive speedup = %.3f, want >= 1.3", res.MeasuredSpeedup)
	}
	if res.OptimizedIdle >= res.BaselineIdle {
		t.Fatalf("idle did not drop: %.3f -> %.3f", res.BaselineIdle, res.OptimizedIdle)
	}
	if res.OptimizedMXU <= res.BaselineMXU {
		t.Fatalf("MXU util did not rise: %.3f -> %.3f", res.BaselineMXU, res.OptimizedMXU)
	}
	if res.FinalParams == res.InitialParams {
		t.Fatal("no parameter was changed")
	}
	if res.FinalParams.DecodeThreads <= res.InitialParams.DecodeThreads {
		t.Fatalf("decode threads not raised: %+v", res.FinalParams)
	}
}

func TestOptimizerModestGainOnTunedWorkload(t *testing.T) {
	// The reference models are already hand-tuned; gains must exist but
	// stay modest (the paper's ~1.12× regime), and tuning must never
	// slow the measured steady state down much.
	res := optimize(t, "retinanet-coco", false, Options{Steps: 300})
	if res.MeasuredSpeedup < 1.0 {
		t.Fatalf("tuned workload regressed: %.3f", res.MeasuredSpeedup)
	}
	if res.MeasuredSpeedup > 1.4 {
		t.Fatalf("gain on hand-tuned workload suspiciously high: %.3f", res.MeasuredSpeedup)
	}
}

func TestOptimizerCriticalPhaseDetection(t *testing.T) {
	res := optimize(t, "dcgan-cifar10", true, Options{})
	if res.CriticalPhaseStep <= 0 {
		t.Fatal("critical phase never detected")
	}
	if res.CriticalPhaseStep > 60 {
		t.Fatalf("critical phase detected only at step %d", res.CriticalPhaseStep)
	}
}

func TestOptimizerCriticalPhaseDefersUntilTrainingDominates(t *testing.T) {
	// QANet's session init spans roughly five of its step periods, so for
	// the first few steps the init phase — not training — holds the
	// majority of aggregated execution time. With a warmup window that
	// ends before training dominates, the >50% gate must keep deferring;
	// the old bookkeeping fed every train step into both sides of the
	// comparison, which made the gate pass the moment warmup ended.
	res := optimize(t, "qanet-squad", false, Options{WarmupSteps: 2})
	if res.CriticalPhaseStep <= 0 {
		t.Fatal("critical phase never detected")
	}
	if res.CriticalPhaseStep <= 2 {
		t.Fatalf("critical phase at step %d: gate fired the moment warmup ended, before training dominated", res.CriticalPhaseStep)
	}
}

func TestOptimizerHonorsWorkloadHostSpec(t *testing.T) {
	// A smaller host (2 cores → 4 SMT threads) must bound exploration:
	// the tuner used to clamp candidates against the hardcoded default
	// 16-core spec, so a workload on constrained hardware could be pushed
	// past its actual thread budget.
	w := workloads.MustGet("dcgan-cifar10").Naive()
	small := host.DefaultSpec()
	small.Cores = 2
	w.HostSpec = small
	res, err := Optimize(w, Options{Steps: 250})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalParams.Clamp(small) != res.FinalParams {
		t.Fatalf("final params exceed the workload's host limits: %+v", res.FinalParams)
	}
	if res.FinalParams.DecodeThreads > 4 || res.FinalParams.ReaderThreads > 4 {
		t.Fatalf("thread counts exceed the 2-core host's 4-thread budget: %+v", res.FinalParams)
	}
}

func TestOptionsNegativeDisables(t *testing.T) {
	// Zero keeps the documented defaults...
	d := Options{}.withDefaults()
	if d.SettleSteps != 4 || d.ImproveEps != 0.02 || d.InstrumentationUs != 250 {
		t.Fatalf("defaults = %+v", d)
	}
	// ...and negative values request zero explicitly (profiler.Options
	// semantics), which a zero-means-default sentinel made unreachable.
	o := Options{SettleSteps: -1, ImproveEps: -1, InstrumentationUs: -1}.withDefaults()
	if o.SettleSteps != 0 {
		t.Fatalf("SettleSteps = %d, want 0", o.SettleSteps)
	}
	if o.ImproveEps != 0 {
		t.Fatalf("ImproveEps = %g, want 0", o.ImproveEps)
	}
	if o.InstrumentationUs != 0 {
		t.Fatalf("InstrumentationUs = %g, want 0", o.InstrumentationUs)
	}
}

func TestOptimizerMoveMetrics(t *testing.T) {
	// End-to-end through Optimize: the obs registry must agree with the
	// returned move history.
	reg := obs.NewRegistry(128)
	res := optimize(t, "qanet-squad", true, Options{Obs: reg})
	snap := reg.Snapshot()

	accepted, rolledBack := 0, 0
	for _, m := range res.Moves {
		if m.Accepted {
			accepted++
		} else {
			rolledBack++
		}
	}
	if got := snap.C("optimizer.probes.accepted"); got != int64(accepted) {
		t.Fatalf("accepted counter = %d, moves say %d", got, accepted)
	}
	if got := snap.C("optimizer.probes.rolled_back"); got != int64(rolledBack) {
		t.Fatalf("rolled_back counter = %d, moves say %d", got, rolledBack)
	}
	if got := snap.C("optimizer.restore.stalls"); got != int64(rolledBack) {
		t.Fatalf("restore stalls = %d, want one per rollback (%d)", got, rolledBack)
	}
	if got := snap.C("optimizer.probes.started"); got < int64(len(res.Moves)) {
		t.Fatalf("probes started = %d, fewer than %d finished moves", got, len(res.Moves))
	}
	if got := snap.Gauges["optimizer.critical_phase.step"]; got != res.CriticalPhaseStep {
		t.Fatalf("critical-phase gauge = %d, result says %d", got, res.CriticalPhaseStep)
	}
	moveEvents := 0
	for _, ev := range snap.Events {
		if ev.Scope == "optimizer" && ev.Name == "move" {
			moveEvents++
			if !strings.Contains(ev.Detail, "->") {
				t.Fatalf("move event lacks a from->to transition: %q", ev.Detail)
			}
		}
	}
	if moveEvents != len(res.Moves) {
		t.Fatalf("%d move events for %d moves", moveEvents, len(res.Moves))
	}
}

func TestOptimizerMovesRecorded(t *testing.T) {
	res := optimize(t, "qanet-squad", true, Options{})
	if len(res.Moves) == 0 {
		t.Fatal("no moves recorded")
	}
	accepted := 0
	for _, m := range res.Moves {
		if m.Param == "" || m.To == m.From {
			t.Fatalf("degenerate move %+v", m)
		}
		if m.Accepted {
			accepted++
			if m.PeriodAfter >= m.PeriodBefore {
				t.Fatalf("accepted move without improvement: %+v", m)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no move accepted on a naive workload")
	}
}

func TestOptimizerOutputUnchangedGuard(t *testing.T) {
	// The tuned run must keep validated parameters at every point; the
	// final configuration always validates and is within host limits.
	res := optimize(t, "bert-mrpc", true, Options{})
	if err := res.FinalParams.Validate(); err != nil {
		t.Fatalf("final params invalid: %v", err)
	}
	if res.FinalParams.Clamp(host.DefaultSpec()) != res.FinalParams {
		t.Fatal("final params exceed host limits")
	}
}

func TestProjectedSpeedupPenalizesShortRuns(t *testing.T) {
	// BERT-MRPC's full run is far below the post-processing cost: the
	// paper's "short workloads can take a performance hit".
	short := optimize(t, "bert-mrpc", false, Options{})
	if short.ProjectedSpeedup >= 1.0 {
		t.Fatalf("short workload projected %.3f, want < 1 (post-processing hit)", short.ProjectedSpeedup)
	}
	long := optimize(t, "retinanet-coco", false, Options{Steps: 300})
	if long.ProjectedSpeedup <= 1.0 {
		t.Fatalf("long workload projected %.3f, want > 1", long.ProjectedSpeedup)
	}
}

func TestAdjustableParams(t *testing.T) {
	// From naive settings everything has headroom.
	names := AdjustableParams(host.NaiveParams(), host.DefaultSpec())
	if len(names) != 5 {
		t.Fatalf("adjustable from naive = %v", names)
	}
	// A saturated parameter is excluded.
	p := host.DefaultParams()
	p.InfeedThreads = 8 // host cap
	names = AdjustableParams(p, host.DefaultSpec())
	for _, n := range names {
		if n == "InfeedThreads" {
			t.Fatal("saturated InfeedThreads still adjustable")
		}
	}
}

func TestOptimizeNilWorkload(t *testing.T) {
	if _, err := Optimize(nil, Options{}); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestOptimizerV3StillHelps(t *testing.T) {
	// Structure holds on TPUv3 too — gains exist for naive code, and
	// MXU gains are smaller in absolute terms than on v2 (Figure 16's
	// "pronounced change" is a v2 phenomenon).
	v2 := optimize(t, "dcgan-cifar10", true, Options{Version: tpu.V2})
	v3 := optimize(t, "dcgan-cifar10", true, Options{Version: tpu.V3})
	if v3.MeasuredSpeedup < 1.2 {
		t.Fatalf("v3 naive speedup = %.3f", v3.MeasuredSpeedup)
	}
	d2 := v2.OptimizedMXU - v2.BaselineMXU
	d3 := v3.OptimizedMXU - v3.BaselineMXU
	if d3 >= d2 {
		t.Fatalf("MXU gain on v3 (%.3f) not smaller than v2 (%.3f)", d3, d2)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %g", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %g", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %g", m)
	}
	// Robust to one large outlier.
	if m := median([]float64{10, 10, 10, 1000, 10}); m != 10 {
		t.Fatalf("outlier median = %g", m)
	}
}

func BenchmarkOptimizeNaiveDCGAN(b *testing.B) {
	w := workloads.MustGet("dcgan-cifar10").Naive()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(w, Options{Steps: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOptimizerTooShortToTune(t *testing.T) {
	// A run shorter than the warmup window: the critical phase is never
	// confirmed, no tuning happens, and the result is still coherent.
	res := optimize(t, "dcgan-mnist", false, Options{Steps: 20, WarmupSteps: 50})
	if len(res.Moves) != 0 {
		t.Fatalf("moves on a too-short run: %d", len(res.Moves))
	}
	if res.FinalParams != res.InitialParams {
		t.Fatal("params changed without tuning")
	}
	if res.MeasuredSpeedup <= 0 {
		t.Fatalf("speedup = %g", res.MeasuredSpeedup)
	}
}

func TestOptimizerSaturatedStart(t *testing.T) {
	// Starting from host-maximum parameters, every grow move is clamped:
	// the optimizer must terminate with zero accepted moves.
	w := workloads.MustGet("dcgan-cifar10")
	w.HostParams = host.Params{
		ReaderThreads: 32, DecodeThreads: 32, PrefetchDepth: 64,
		InfeedThreads: 8, ShuffleBuffer: 1 << 20,
	}
	res, err := Optimize(w, Options{Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Moves {
		if m.Accepted {
			t.Fatalf("accepted a move from saturated params: %+v", m)
		}
	}
	if res.FinalParams != w.HostParams {
		t.Fatalf("saturated params changed: %+v", res.FinalParams)
	}
}
