package profiler

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/tpu"
)

// failingClient returns a few windows and then a permanent error —
// a dropped TPU connection mid-profile.
type failingClient struct {
	mu    sync.Mutex
	left  int
	inner Client
}

func (c *failingClient) NextProfile() (*tpu.ProfileResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return nil, errors.New("connection reset by peer")
	}
	c.left--
	return c.inner.NextProfile()
}

func TestProfilerSurfacesClientFailure(t *testing.T) {
	// The run must span more than one 60s profile window so the client's
	// failure hits after a successful delivery.
	r := fixture(t, 800)
	p := New(&failingClient{left: 1, inner: &ServiceClient{Service: r.ProfileService()}}, Options{})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err == nil {
		t.Fatal("dropped connection not surfaced")
	}
	// Whatever was collected before the failure is still returned.
	if len(records) == 0 {
		t.Fatal("records collected before the failure were lost")
	}
}

func TestProfilerFailsWhenServerDiesMidStream(t *testing.T) {
	r := fixture(t, 60)
	srv := rpc.NewServer()
	r.ProfileService().Register(srv)
	conn := rpc.Pipe(srv)

	p := New(&RPCClient{Conn: conn}, Options{})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	// Kill the transport under the profiler.
	srv.Close()
	conn.Close()
	if _, err := p.Stop(); err == nil {
		t.Fatal("server death not surfaced")
	}
}

func TestProfilerRecordingWithCustomPrefix(t *testing.T) {
	// The in-memory store accepts any non-empty object name, so exotic
	// prefixes must flow through the recording goroutine unharmed and
	// Stop must drain cleanly.
	r := fixture(t, 40)
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("b")
	p := New(&ServiceClient{Service: r.ProfileService()},
		Options{Bucket: bucket, ObjectPrefix: "\x00ok/"})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}
	// The recording thread writes with the given prefix; the in-memory
	// store accepts any non-empty name, so this records successfully —
	// assert the happy path still works with odd prefixes and the
	// stop path drains cleanly.
	if _, err := p.Stop(); err != nil {
		t.Fatalf("odd prefix broke recording: %v", err)
	}
	if got := len(bucket.List("\x00ok/")); got == 0 {
		t.Fatal("no records under custom prefix")
	}
}
