package profiler

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/tpu"
)

// degradedLog records OnDegraded callbacks thread-safely.
type degradedLog struct {
	mu   sync.Mutex
	errs []error
}

func (d *degradedLog) cb(err error) {
	d.mu.Lock()
	d.errs = append(d.errs, err)
	d.mu.Unlock()
}

func (d *degradedLog) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.errs)
}

func (d *degradedLog) first() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.errs) == 0 {
		return nil
	}
	return d.errs[0]
}

func (d *degradedLog) anyIs(target error) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, err := range d.errs {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// Acceptance (a): the profiler survives repeated injected disconnects by
// reconnecting with backoff; every window's events are still collected
// and no gaps appear because the drops hit before requests reach the
// service (write-side faults, so retries are lossless).
func TestProfilerSurvivesInjectedDisconnects(t *testing.T) {
	// 3000 steps span five 60s profile windows — enough requests to burn
	// through three scripted disconnects and finish on a healthy conn.
	r := fixture(t, 3000)
	srv := rpc.NewServer()
	r.ProfileService().Register(srv)
	defer srv.Close()

	// Connections 1-3 each die after one request/response exchange — a
	// request is a single buffered client write, so the second write on
	// the conn is the one dropped (write-side: the dropped request never
	// reaches the service, so no window is consumed). Connection 4+ are
	// healthy.
	d := &faultnet.Dialer{
		Dial: func() (net.Conn, error) {
			cc, sc := net.Pipe()
			go srv.ServeConn(sc)
			return cc, nil
		},
		Faults: func(attempt int) faultnet.Config {
			if attempt <= 3 {
				return faultnet.Config{DropAfterWrites: 1}
			}
			return faultnet.Config{}
		},
	}
	rc, err := rpc.NewReconnectClient(rpc.ReconnectOptions{
		Dial:        d.Next,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	deg := &degradedLog{}
	p := New(&RPCClient{Conn: rc}, Options{OnDegraded: deg.cb})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatalf("profiler died despite reconnect layer: %v", err)
	}
	if d.Attempts() < 4 {
		t.Fatalf("dial attempts = %d, want >= 4 (3 disconnects survived)", d.Attempts())
	}
	var events int64
	for _, rec := range records {
		if rec.Gap {
			t.Fatalf("record %d is a gap; write-side drops must be lossless", rec.Seq)
		}
		events += rec.NumEvents
	}
	if events != int64(len(r.Events())) {
		t.Fatalf("collected %d of %d events across disconnects", events, len(r.Events()))
	}
}

// flakyWindowClient fails NextProfile for a scripted set of call numbers
// (1-based), exercising the gap path without touching the service cursor.
type flakyWindowClient struct {
	mu    sync.Mutex
	inner Client
	fail  map[int]bool
	calls int
}

func (c *flakyWindowClient) NextProfile() (*tpu.ProfileResponse, error) {
	c.mu.Lock()
	c.calls++
	n := c.calls
	c.mu.Unlock()
	if c.fail[n] {
		return nil, fmt.Errorf("injected transient fault on call %d", n)
	}
	return c.inner.NextProfile()
}

// Acceptance (a), gap half: windows lost after exhausted retries become
// Gap markers in sequence order; profiling continues and all real events
// are still collected. The obs registry must show the same story: lost
// windows and degradations counted, nothing fatal.
func TestProfilerEmitsGapMarkersAndRecovers(t *testing.T) {
	r := fixture(t, 3000)
	// Retries disabled: each scripted failure costs exactly one window.
	inner := &ServiceClient{Service: r.ProfileService()}
	client := &flakyWindowClient{inner: inner, fail: map[int]bool{2: true, 4: true}}
	deg := &degradedLog{}
	reg := obs.NewRegistry(0)
	p := New(client, Options{MaxRetries: -1, MaxGaps: 3, OnDegraded: deg.cb, Obs: reg})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatalf("recoverable faults killed the profiler: %v", err)
	}
	gaps := 0
	var events int64
	for i, rec := range records {
		if rec.Seq != int64(i) {
			t.Fatalf("record %d has seq %d: gaps broke sequencing", i, rec.Seq)
		}
		if rec.Gap {
			gaps++
			if rec.NumEvents != 0 || len(rec.Steps) != 0 {
				t.Fatalf("gap record %d carries data", rec.Seq)
			}
			continue
		}
		events += rec.NumEvents
	}
	if gaps != 2 {
		t.Fatalf("gap records = %d, want 2", gaps)
	}
	if events != int64(len(r.Events())) {
		t.Fatalf("non-gap records hold %d of %d events", events, len(r.Events()))
	}
	if deg.count() != 2 {
		t.Fatalf("OnDegraded fired %d times, want 2", deg.count())
	}
	snap := reg.Snapshot()
	if snap.C("profiler.windows.lost") != 2 {
		t.Fatalf("windows.lost = %d, want 2", snap.C("profiler.windows.lost"))
	}
	if snap.C("profiler.degraded") != 2 {
		t.Fatalf("degraded = %d, want 2", snap.C("profiler.degraded"))
	}
	if snap.C("profiler.windows.fetched") == 0 {
		t.Fatal("no fetched windows counted")
	}
	lostEvents := 0
	for _, ev := range snap.Events {
		if ev.Scope == "profiler" && ev.Name == "window-lost" {
			lostEvents++
		}
	}
	if lostEvents != 2 {
		t.Fatalf("window-lost ring events = %d, want 2", lostEvents)
	}
}

// Gap records must survive the persist round trip for offline analysis.
func TestGapRecordsPersistAndReload(t *testing.T) {
	r := fixture(t, 800)
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("b")
	client := &flakyWindowClient{
		inner: &ServiceClient{Service: r.ProfileService()},
		fail:  map[int]bool{1: true},
	}
	p := New(client, Options{MaxRetries: -1, Bucket: bucket})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRecords(bucket, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(records) {
		t.Fatalf("loaded %d of %d records", len(loaded), len(records))
	}
	if !loaded[0].Gap {
		t.Fatal("gap marker lost in the persist round trip")
	}
	for _, rec := range loaded[1:] {
		if rec.Gap {
			t.Fatalf("spurious gap on record %d", rec.Seq)
		}
	}
}

// Too many consecutive lost windows must turn into a hard failure, not an
// infinite gap stream.
func TestProfilerGivesUpAfterMaxGaps(t *testing.T) {
	r := fixture(t, 120)
	client := &flakyWindowClient{
		inner: &ServiceClient{Service: r.ProfileService()},
		// Every call fails: the profiler can never recover.
		fail: nil,
	}
	client.fail = alwaysFail{}.asMap(64)
	p := New(client, Options{MaxRetries: -1, MaxGaps: 3, Interval: 50 * time.Microsecond})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err == nil {
		t.Fatal("unrecoverable client did not surface an error")
	}
	gaps := 0
	for _, rec := range records {
		if rec.Gap {
			gaps++
		}
	}
	if gaps != 3 {
		t.Fatalf("emitted %d gaps before giving up, want MaxGaps=3", gaps)
	}
}

type alwaysFail struct{}

func (alwaysFail) asMap(n int) map[int]bool {
	m := make(map[int]bool, n)
	for i := 1; i <= n; i++ {
		m[i] = true
	}
	return m
}

// Acceptance (b): a circuit breaker tripping below the profiler surfaces
// as a prompt fatal error — no gap spam, no retry storm.
func TestProfilerCircuitBreakerIsFatal(t *testing.T) {
	d := &faultnet.Dialer{
		Dial:       func() (net.Conn, error) { c, _ := net.Pipe(); return c, nil },
		Partitions: [][2]int{{1, 1 << 20}}, // permanent partition
	}
	rc, err := rpc.NewReconnectClient(rpc.ReconnectOptions{
		Dial:             d.Next,
		MaxRetries:       16,
		BreakerThreshold: 4,
		BaseBackoff:      10 * time.Microsecond,
		MaxBackoff:       100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	p := New(&RPCClient{Conn: rc}, Options{})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var stopErr error
	go func() {
		_, stopErr = p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not return: breaker failure not treated as fatal")
	}
	if !errors.Is(stopErr, rpc.ErrCircuitOpen) {
		t.Fatalf("Stop err = %v, want ErrCircuitOpen in the chain", stopErr)
	}
	if !rc.Tripped() {
		t.Fatal("breaker never tripped")
	}
}

// Transient storage failures are retried and recording completes.
func TestProfilerRecordingRetriesTransientPutFailures(t *testing.T) {
	r := fixture(t, 100)
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("b")
	fs := &faultnet.FlakyStore{Inner: bucket, FailFirst: 2}
	p := New(&ServiceClient{Service: r.ProfileService()},
		Options{Bucket: fs, Backoff: 50 * time.Microsecond})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatalf("transient storage faults killed recording: %v", err)
	}
	if got := len(bucket.List("profiles/")); got != len(records) {
		t.Fatalf("bucket holds %d of %d records after retries", got, len(records))
	}
}

// Acceptance (c): a storage endpoint that stalls forever must not block
// the profiling goroutine — every window is still collected in memory
// while the recorder is wedged — and Stop stays bounded via PutTimeout.
// Since the degradation loses no records, Stop returns them with a nil
// error; the incident is visible via OnDegraded and the obs counters.
func TestProfilerStorageStallDoesNotBlockProfiling(t *testing.T) {
	r := fixture(t, 800)
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("b")
	stall := make(chan struct{})
	defer func() {
		select {
		case <-stall:
		default:
			close(stall)
		}
	}()
	fs := &faultnet.FlakyStore{Inner: bucket, Stall: stall}
	deg := &degradedLog{}
	reg := obs.NewRegistry(0)
	p := New(&ServiceClient{Service: r.ProfileService()}, Options{
		Bucket:     fs,
		QueueSize:  1, // tiny queue: the stall backs up after one record
		PutTimeout: 50 * time.Millisecond,
		PutRetries: -1,
		OnDegraded: deg.cb,
		Obs:        reg,
	})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}

	// While storage is fully stalled, profiling must still drain every
	// window into memory. This deadline fails loudly if the profiling
	// goroutine ever blocks on the recording path.
	want := int64(len(r.Events()))
	deadline := time.Now().Add(5 * time.Second)
	for {
		var events int64
		for _, rec := range p.Records() {
			events += rec.NumEvents
		}
		if events == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("profiling blocked by stalled storage: %d of %d events collected", events, want)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Stop must return in bounded time even though the store never
	// recovers: the wedged Put is abandoned at PutTimeout.
	done := make(chan struct{})
	var records int
	var stopErr error
	go func() {
		recs, err := p.Stop()
		records, stopErr = len(recs), err
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop wedged by stalled storage")
	}
	if records == 0 {
		t.Fatal("records lost to the storage stall")
	}
	// Degrading to memory-only keeps every record: not a hard error.
	if stopErr != nil {
		t.Fatalf("Stop err = %v, want nil (degradation must not be fatal)", stopErr)
	}
	if deg.count() == 0 {
		t.Fatal("no degradation reported despite dropped persists")
	}
	degErr := deg.first()
	if !errors.Is(degErr, ErrPutTimeout) && !strings.Contains(degErr.Error(), "queue full") {
		t.Fatalf("degradation cause unclassified: %v", degErr)
	}
	snap := reg.Snapshot()
	if snap.C("profiler.put.timeouts") == 0 {
		t.Fatal("put timeout not counted")
	}
	if snap.C("profiler.recording.memory_only") != 1 {
		t.Fatalf("memory_only = %d, want 1", snap.C("profiler.recording.memory_only"))
	}
}

// Concurrent profiling and recording failures: the profile-loop failure
// is fatal (data genuinely lost), while the storage failure is a
// degradation — reported via OnDegraded with its cause intact, never
// joined into Stop's error, with all collected records still returned.
func TestProfilerSeparatesFatalFromDegradedFailures(t *testing.T) {
	r := fixture(t, 800)
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("b")
	// Storage that always fails and a client that dies after one window.
	fs := &faultnet.FlakyStore{Inner: bucket, FailEvery: 1}
	client := &flakyWindowClient{
		inner: &ServiceClient{Service: r.ProfileService()},
		fail:  alwaysFail{}.asMap(64),
	}
	client.fail[1] = false // one good window so recording has work
	deg := &degradedLog{}
	reg := obs.NewRegistry(0)
	p := New(client, Options{
		Bucket:     fs,
		MaxRetries: -1,
		MaxGaps:    1,
		PutRetries: -1,
		Backoff:    10 * time.Microsecond,
		Interval:   10 * time.Microsecond,
		OnDegraded: deg.cb,
		Obs:        reg,
	})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err == nil {
		t.Fatal("unrecoverable profile-loop failure did not surface")
	}
	if !strings.Contains(err.Error(), "profile request") {
		t.Fatalf("profile failure missing from Stop error: %v", err)
	}
	if errors.Is(err, faultnet.ErrTransientStorage) {
		t.Fatalf("storage degradation leaked into Stop's error: %v", err)
	}
	if !deg.anyIs(faultnet.ErrTransientStorage) {
		t.Fatal("storage degradation never reported via OnDegraded")
	}
	if len(records) == 0 {
		t.Fatal("collected records lost")
	}
	if reg.Snapshot().C("profiler.recording.memory_only") != 1 {
		t.Fatal("memory-only degradation not counted")
	}
}
