// Package profiler implements TPUPoint-Profiler, the core of the TPUPoint
// toolchain (Section III).
//
// On Start, the profiler launches a dedicated profiling goroutine that
// periodically requests profiles from the TPU's profile service,
// independent of the training loop — training continues uninterrupted
// while profiling takes place. Each response (raw events plus idle/MXU
// metadata) is immediately reduced to a statistical ProfileRecord, which
// keeps memory bounded: the profiler never retains raw events.
//
// If the analyzer flag is set on Start (the paper's Figure 2 API), a
// second recording goroutine streams each record to Cloud Storage while
// the profiling goroutine keeps requesting the next window. Stop sends the
// final request, drains both goroutines, and returns the records.
package profiler

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/tpu"
	"repro/internal/trace"
)

// Client fetches the next profile window. Implementations exist for the
// in-process service and the RPC transport.
type Client interface {
	NextProfile() (*tpu.ProfileResponse, error)
}

// ServiceClient profiles an in-process tpu.ProfileService.
type ServiceClient struct {
	Service *tpu.ProfileService
}

// NextProfile implements Client.
func (c *ServiceClient) NextProfile() (*tpu.ProfileResponse, error) {
	resp := c.Service.NextWindow()
	return &resp, nil
}

// RPCClient profiles a remote service over the rpc transport — the
// client-to-master gRPC call path of the real tool. Conn may be a plain
// *rpc.Client or a *rpc.ReconnectClient for the resilient path.
type RPCClient struct {
	Conn rpc.Caller
}

// NextProfile implements Client.
func (c *RPCClient) NextProfile() (*tpu.ProfileResponse, error) {
	raw, err := c.Conn.Call(tpu.MethodProfile, nil)
	if err != nil {
		return nil, err
	}
	return tpu.UnmarshalProfileResponse(raw)
}

// RecordStore is where the recording thread persists records. It is the
// Put subset of *storage.Bucket so fault-injecting decorators (see
// internal/faultnet) can stand in for the real bucket.
type RecordStore interface {
	Put(name string, data []byte) (*storage.Object, error)
}

// BatchStore is the optional fast path a RecordStore can offer for
// batched persistence: framed is a trace framed stream (uvarint length,
// record bytes)* holding count records. Stores that understand the
// framed form natively — the archive sink, the fleet client — accept a
// whole batch in one call; plain buckets get the framed blob through
// Put instead and LoadRecords decodes it back.
type BatchStore interface {
	RecordStore
	PutBatch(name string, framed []byte, count int) (*storage.Object, error)
}

// ErrPutTimeout marks a storage write abandoned after Options.PutTimeout.
var ErrPutTimeout = errors.New("profiler: storage put timed out")

// Options configure a profiler.
type Options struct {
	// Interval is the wall-clock pause between profile requests when the
	// last window was empty (training hasn't produced new activity).
	// Defaults to 200µs — the simulation runs faster than real time.
	Interval time.Duration

	// Bucket receives serialized records when the analyzer flag is set.
	Bucket RecordStore

	// ObjectPrefix prefixes record object names (default "profiles/").
	ObjectPrefix string

	// BreakpointStep, when positive, ends profiling once a record covers
	// this training step — the paper's "user-specified breakpoint": the
	// profiling thread sends its final request and shuts down even
	// though training continues.
	BreakpointStep int64

	// MaxRetries is how many times a failed profile request is retried
	// (with backoff) before the window is declared lost and a Gap record
	// is emitted. Default 2; negative disables retries.
	MaxRetries int

	// Backoff is the delay before the first retry, doubling per attempt.
	// Defaults to Interval.
	Backoff time.Duration

	// MaxGaps bounds consecutive lost windows: one more and the profiler
	// gives up with the underlying error. Default 4; negative means a
	// single lost window is fatal (the pre-resilience behavior).
	MaxGaps int

	// OnDegraded, when set, is invoked every time the profiler loses
	// data but keeps going: a window lost to transport faults (a Gap
	// record was emitted), a record dropped from the persist queue, or
	// recording abandoned after storage failures. It may be called from
	// the profiling or the recording goroutine; it must not block.
	OnDegraded func(err error)

	// PutRetries is how many times a failed record write is retried with
	// backoff before recording degrades to in-memory only. Default 2;
	// negative disables retries.
	PutRetries int

	// PutTimeout bounds each storage write; a write exceeding it is
	// abandoned in the background and counts as a failure, so a stalled
	// store can never wedge Stop. Zero means no bound.
	PutTimeout time.Duration

	// QueueSize bounds the profiling→recording handoff queue (default
	// 64). When the queue is full the record is kept in memory only and
	// OnDegraded fires — the profiling thread never blocks on storage.
	QueueSize int

	// BatchRecords caps how many records the recording thread coalesces
	// into one storage put. Values <= 1 keep the historical
	// one-object-per-record behavior. Batching is opportunistic: only
	// records already waiting in the queue are coalesced, so an idle
	// stream still flushes every record immediately — batching adds
	// throughput under load, never latency.
	BatchRecords int

	// Obs, when set, receives the profiler's metrics and degradation
	// events (see the README's metric catalogue). Nil disables
	// observability at zero cost.
	Obs *obs.Registry
}

// metrics are the profiler's obs instruments; with a nil registry every
// handle is nil and every operation a no-op.
type metrics struct {
	windowsFetched *obs.Counter // non-empty windows reduced to records
	windowsEmpty   *obs.Counter // polls that returned no new activity
	windowsLost    *obs.Counter // windows lost to faults (Gap records)
	reqRetries     *obs.Counter // profile-request retry attempts
	reqLatency     *obs.Histogram
	recsPersisted  *obs.Counter // records written to storage
	recsDropped    *obs.Counter // records not persisted: queue full
	putRetries     *obs.Counter // storage-write retry attempts
	putTimeouts    *obs.Counter // writes abandoned at PutTimeout
	putLatency     *obs.Histogram
	memoryOnly     *obs.Counter // times recording degraded to memory-only
	degraded       *obs.Counter // every OnDegraded-worthy incident
	queueDepth     *obs.Gauge
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		windowsFetched: r.Counter("profiler.windows.fetched"),
		windowsEmpty:   r.Counter("profiler.windows.empty"),
		windowsLost:    r.Counter("profiler.windows.lost"),
		reqRetries:     r.Counter("profiler.request.retries"),
		reqLatency:     r.Histogram("profiler.request.latency_us"),
		recsPersisted:  r.Counter("profiler.records.persisted"),
		recsDropped:    r.Counter("profiler.records.dropped"),
		putRetries:     r.Counter("profiler.put.retries"),
		putTimeouts:    r.Counter("profiler.put.timeouts"),
		putLatency:     r.Histogram("profiler.put.latency_us"),
		memoryOnly:     r.Counter("profiler.recording.memory_only"),
		degraded:       r.Counter("profiler.degraded"),
		queueDepth:     r.Gauge("profiler.queue.depth"),
	}
}

// Profiler is the TPUPoint-Profiler front end (the paper's Figure 2
// tpprofiler object).
type Profiler struct {
	client Client
	opts   Options
	m      metrics

	mu       sync.Mutex
	started  bool
	stopping bool
	records  []*trace.ProfileRecord
	err      error

	recCh  chan *trace.ProfileRecord
	doneCh chan struct{}
	recWG  sync.WaitGroup
}

// New builds a profiler over a profile client.
func New(client Client, opts Options) *Profiler {
	if opts.Interval <= 0 {
		opts.Interval = 200 * time.Microsecond
	}
	if opts.ObjectPrefix == "" {
		opts.ObjectPrefix = "profiles/"
	}
	if opts.Backoff <= 0 {
		opts.Backoff = opts.Interval
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.MaxGaps == 0 {
		opts.MaxGaps = 4
	} else if opts.MaxGaps < 0 {
		opts.MaxGaps = 0
	}
	if opts.PutRetries == 0 {
		opts.PutRetries = 2
	} else if opts.PutRetries < 0 {
		opts.PutRetries = 0
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 64
	}
	return &Profiler{client: client, opts: opts, m: newMetrics(opts.Obs)}
}

// Start launches the profiling goroutine. With analyzer=true a recording
// goroutine persists every record to the bucket for post-execution
// analysis; with analyzer=false records are only buffered in memory (the
// optimizer-only mode).
func (p *Profiler) Start(analyzer bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return errors.New("profiler: already started")
	}
	if analyzer && p.opts.Bucket == nil {
		return errors.New("profiler: analyzer mode needs a storage bucket")
	}
	p.started = true
	p.doneCh = make(chan struct{})
	if analyzer {
		p.recCh = make(chan *trace.ProfileRecord, p.opts.QueueSize)
		p.recWG.Add(1)
		go p.recordLoop(p.recCh)
	}
	go p.profileLoop()
	return nil
}

// profileLoop is the profiling thread: request, reduce, hand off, repeat.
// A request that keeps failing after retries costs one window — a Gap
// record marks the hole and the loop presses on — until the error is
// fatal or MaxGaps consecutive windows are lost.
func (p *Profiler) profileLoop() {
	defer close(p.doneCh)
	seq := int64(0)
	gaps := 0
	for {
		resp, err := p.nextProfile()
		if err != nil {
			if isFatal(err) || gaps >= p.opts.MaxGaps {
				p.opts.Obs.Emit("profiler", "fatal", err.Error())
				p.fail(fmt.Errorf("profiler: profile request: %w", err))
				break
			}
			gaps++
			p.m.windowsLost.Inc()
			gap := &trace.ProfileRecord{Seq: seq, Gap: true}
			seq++
			p.deliver(gap)
			p.opts.Obs.Emit("profiler", "window-lost",
				fmt.Sprintf("seq=%d consecutive=%d: %v", gap.Seq, gaps, err))
			p.degraded(fmt.Errorf("profiler: window %d lost (%d consecutive): %w", gap.Seq, gaps, err))
			time.Sleep(p.opts.Interval)
			continue
		}
		gaps = 0
		breakpointHit := false
		if len(resp.Events) == 0 {
			p.m.windowsEmpty.Inc()
		} else {
			p.m.windowsFetched.Inc()
			rec := trace.Reduce(seq, resp.WindowStart, resp.Events, resp.IdleFrac, resp.MXUUtil)
			rec.Truncated = rec.Truncated || resp.Truncated
			seq++
			p.deliver(rec)
			if bp := p.opts.BreakpointStep; bp > 0 {
				for _, s := range rec.Steps {
					if s.Step >= bp {
						breakpointHit = true
						break
					}
				}
			}
		}
		if resp.EndOfStream || breakpointHit {
			break
		}
		if p.isStopping() && len(resp.Events) == 0 {
			// Final request made and nothing new arrived: done.
			break
		}
		if len(resp.Events) == 0 {
			time.Sleep(p.opts.Interval)
		}
	}
	p.mu.Lock()
	ch := p.recCh
	p.recCh = nil
	p.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// nextProfile requests the next window, retrying transient failures up to
// MaxRetries with doubling backoff. Fatal errors and Stop cut retries
// short.
func (p *Profiler) nextProfile() (*tpu.ProfileResponse, error) {
	var lastErr error
	for attempt := 0; attempt <= p.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			p.m.reqRetries.Inc()
			time.Sleep(p.opts.Backoff << (attempt - 1))
		}
		start := time.Now()
		resp, err := p.client.NextProfile()
		p.m.reqLatency.ObserveSince(start)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if isFatal(err) {
			break
		}
	}
	return nil, lastErr
}

// isFatal separates errors no retry can cure (an open circuit breaker,
// an application-level remote error) from transient transport faults.
func isFatal(err error) bool {
	return !rpc.IsTransient(err)
}

func (p *Profiler) isStopping() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopping
}

// deliver appends rec to the in-memory stream and hands it to the
// recording thread without ever blocking: if the persist queue is full
// (storage stalled or slow), the record stays in memory only and the
// degradation is reported. The profiling thread's cadence is sacred —
// per the paper, profiling must not perturb training.
func (p *Profiler) deliver(rec *trace.ProfileRecord) {
	p.mu.Lock()
	p.records = append(p.records, rec)
	ch := p.recCh
	p.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- rec:
		p.m.queueDepth.Set(int64(len(ch)))
	default:
		p.m.recsDropped.Inc()
		p.opts.Obs.Emit("profiler", "record-dropped",
			fmt.Sprintf("seq=%d persist queue full", rec.Seq))
		p.degraded(fmt.Errorf("profiler: record %d not persisted: queue full", rec.Seq))
	}
}

// recordLoop is the recording thread: persist records as they arrive so
// the profiling thread can keep requesting the next profile. Writes are
// retried with backoff; if one still fails, recording degrades to
// in-memory only but keeps draining the channel so the profiling thread
// can never block on a dead recorder.
//
// Storage death is a *degradation*, not a failure: every record is still
// held in memory and returned by Stop, so the run's data is intact. It is
// reported through OnDegraded and the obs counters; fail() is reserved
// for unrecoverable profile-loop errors that actually lose data.
func (p *Profiler) recordLoop(ch <-chan *trace.ProfileRecord) {
	defer p.recWG.Done()
	i := 0
	dead := false
	batchMax := p.opts.BatchRecords
	if batchMax < 1 {
		batchMax = 1
	}
	var buf []byte // reused marshal buffer: one allocation for the run, not one per record
	batch := make([]*trace.ProfileRecord, 0, batchMax)
	for rec := range ch {
		p.m.queueDepth.Set(int64(len(ch)))
		if dead {
			continue // drain without persisting
		}
		batch = append(batch[:0], rec)
	coalesce:
		for len(batch) < batchMax {
			select {
			case more, ok := <-ch:
				if !ok {
					break coalesce
				}
				batch = append(batch, more)
			default:
				break coalesce // queue empty: flush now, don't wait
			}
		}
		name, err := func() (string, error) {
			if batchMax <= 1 {
				name := fmt.Sprintf("%srecord-%06d", p.opts.ObjectPrefix, i)
				buf = trace.MarshalRecordAppend(buf[:0], batch[0])
				return name, p.putWithRetry(func(data []byte) error {
					_, err := p.opts.Bucket.Put(name, data)
					return err
				}, name, buf)
			}
			name := fmt.Sprintf("%sbatch-%06d", p.opts.ObjectPrefix, i)
			buf = buf[:0]
			for _, r := range batch {
				buf = trace.AppendFramedRecord(buf, r)
			}
			count := len(batch)
			if bs, ok := p.opts.Bucket.(BatchStore); ok {
				return name, p.putWithRetry(func(data []byte) error {
					_, err := bs.PutBatch(name, data, count)
					return err
				}, name, buf)
			}
			return name, p.putWithRetry(func(data []byte) error {
				_, err := p.opts.Bucket.Put(name, data)
				return err
			}, name, buf)
		}()
		i++
		if err != nil {
			p.m.memoryOnly.Inc()
			p.opts.Obs.Emit("profiler", "memory-only",
				fmt.Sprintf("recording %s failed; records stay in memory: %v", name, err))
			p.degraded(fmt.Errorf("profiler: recording degraded to memory-only: %w", err))
			dead = true
			continue
		}
		p.m.recsPersisted.Add(int64(len(batch)))
	}
}

// putWithRetry drives one logical write (put is Put or PutBatch bound to
// its target) through the retry/backoff/timeout policy. data may be the
// loop's reused marshal buffer; when a timeout could leave an abandoned
// writer still reading it, timedPut copies first.
func (p *Profiler) putWithRetry(put func(data []byte) error, name string, data []byte) error {
	var lastErr error
	for attempt := 0; attempt <= p.opts.PutRetries; attempt++ {
		if attempt > 0 {
			p.m.putRetries.Inc()
			time.Sleep(p.opts.Backoff << (attempt - 1))
		}
		start := time.Now()
		err := p.timedPut(put, name, data)
		p.m.putLatency.ObserveSince(start)
		if err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// timedPut bounds one storage write by PutTimeout. A write that overruns
// is abandoned in a background goroutine (the store may complete it
// later; the in-memory store's Put is cheap enough that the leak is
// bounded by the retry budget) and reported as ErrPutTimeout. The
// abandoned goroutine gets a private copy of data so the recording loop
// can keep reusing its marshal buffer.
func (p *Profiler) timedPut(put func(data []byte) error, name string, data []byte) error {
	if p.opts.PutTimeout <= 0 {
		return put(data)
	}
	owned := append([]byte(nil), data...)
	done := make(chan error, 1)
	go func() {
		done <- put(owned)
	}()
	timer := time.NewTimer(p.opts.PutTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		p.m.putTimeouts.Inc()
		return fmt.Errorf("%w: %s after %v", ErrPutTimeout, name, p.opts.PutTimeout)
	}
}

// fail accumulates goroutine failures. Concurrent failures from the
// profiling and recording threads are joined, never shadowed.
func (p *Profiler) fail(err error) {
	p.mu.Lock()
	p.err = errors.Join(p.err, err)
	p.mu.Unlock()
}

func (p *Profiler) degraded(err error) {
	p.m.degraded.Inc()
	if cb := p.opts.OnDegraded; cb != nil {
		cb(err)
	}
}

// Stop sends the final profile request, waits for both goroutines to
// drain, and returns the collected records.
//
// The returned error covers unrecoverable profile-loop failures only (a
// fatal transport error, MaxGaps exceeded). Storage-side degradation —
// recording having fallen back to memory-only, dropped persists, put
// timeouts — does NOT surface here: every record is still returned, and
// the degradation is visible through OnDegraded and the obs counters.
func (p *Profiler) Stop() ([]*trace.ProfileRecord, error) {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return nil, errors.New("profiler: not started")
	}
	p.stopping = true
	done := p.doneCh
	p.mu.Unlock()

	<-done
	p.recWG.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	p.started = false
	p.stopping = false
	return p.records, p.err
}

// Records returns the records collected so far (safe to call while
// profiling; returns a snapshot).
func (p *Profiler) Records() []*trace.ProfileRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*trace.ProfileRecord, len(p.records))
	copy(out, p.records)
	return out
}

// LoadRecords reads persisted records back from storage, ordered by
// sequence number — the input to offline TPUPoint-Analyzer runs. Both
// persisted forms decode: record-* objects hold one wire record,
// batch-* objects hold a framed stream (see Options.BatchRecords).
func LoadRecords(b *storage.Bucket, prefix string) ([]*trace.ProfileRecord, error) {
	if prefix == "" {
		prefix = "profiles/"
	}
	names := b.List(prefix)
	out := make([]*trace.ProfileRecord, 0, len(names))
	for _, name := range names {
		obj, err := b.Get(name)
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(strings.TrimPrefix(name, prefix), "batch-") {
			recs, err := trace.UnmarshalFramed(obj.Data)
			if err != nil {
				return nil, fmt.Errorf("profiler: decoding %s: %w", name, err)
			}
			out = append(out, recs...)
			continue
		}
		rec, err := trace.UnmarshalRecord(obj.Data)
		if err != nil {
			return nil, fmt.Errorf("profiler: decoding %s: %w", name, err)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}
