// Package profiler implements TPUPoint-Profiler, the core of the TPUPoint
// toolchain (Section III).
//
// On Start, the profiler launches a dedicated profiling goroutine that
// periodically requests profiles from the TPU's profile service,
// independent of the training loop — training continues uninterrupted
// while profiling takes place. Each response (raw events plus idle/MXU
// metadata) is immediately reduced to a statistical ProfileRecord, which
// keeps memory bounded: the profiler never retains raw events.
//
// If the analyzer flag is set on Start (the paper's Figure 2 API), a
// second recording goroutine streams each record to Cloud Storage while
// the profiling goroutine keeps requesting the next window. Stop sends the
// final request, drains both goroutines, and returns the records.
package profiler

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/tpu"
	"repro/internal/trace"
)

// Client fetches the next profile window. Implementations exist for the
// in-process service and the RPC transport.
type Client interface {
	NextProfile() (*tpu.ProfileResponse, error)
}

// ServiceClient profiles an in-process tpu.ProfileService.
type ServiceClient struct {
	Service *tpu.ProfileService
}

// NextProfile implements Client.
func (c *ServiceClient) NextProfile() (*tpu.ProfileResponse, error) {
	resp := c.Service.NextWindow()
	return &resp, nil
}

// RPCClient profiles a remote service over the rpc transport — the
// client-to-master gRPC call path of the real tool.
type RPCClient struct {
	Conn *rpc.Client
}

// NextProfile implements Client.
func (c *RPCClient) NextProfile() (*tpu.ProfileResponse, error) {
	raw, err := c.Conn.Call(tpu.MethodProfile, nil)
	if err != nil {
		return nil, err
	}
	return tpu.UnmarshalProfileResponse(raw)
}

// Options configure a profiler.
type Options struct {
	// Interval is the wall-clock pause between profile requests when the
	// last window was empty (training hasn't produced new activity).
	// Defaults to 200µs — the simulation runs faster than real time.
	Interval time.Duration

	// Bucket receives serialized records when the analyzer flag is set.
	Bucket *storage.Bucket

	// ObjectPrefix prefixes record object names (default "profiles/").
	ObjectPrefix string

	// BreakpointStep, when positive, ends profiling once a record covers
	// this training step — the paper's "user-specified breakpoint": the
	// profiling thread sends its final request and shuts down even
	// though training continues.
	BreakpointStep int64
}

// Profiler is the TPUPoint-Profiler front end (the paper's Figure 2
// tpprofiler object).
type Profiler struct {
	client Client
	opts   Options

	mu       sync.Mutex
	started  bool
	stopping bool
	records  []*trace.ProfileRecord
	err      error

	recCh  chan *trace.ProfileRecord
	doneCh chan struct{}
	recWG  sync.WaitGroup
}

// New builds a profiler over a profile client.
func New(client Client, opts Options) *Profiler {
	if opts.Interval <= 0 {
		opts.Interval = 200 * time.Microsecond
	}
	if opts.ObjectPrefix == "" {
		opts.ObjectPrefix = "profiles/"
	}
	return &Profiler{client: client, opts: opts}
}

// Start launches the profiling goroutine. With analyzer=true a recording
// goroutine persists every record to the bucket for post-execution
// analysis; with analyzer=false records are only buffered in memory (the
// optimizer-only mode).
func (p *Profiler) Start(analyzer bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return errors.New("profiler: already started")
	}
	if analyzer && p.opts.Bucket == nil {
		return errors.New("profiler: analyzer mode needs a storage bucket")
	}
	p.started = true
	p.doneCh = make(chan struct{})
	if analyzer {
		p.recCh = make(chan *trace.ProfileRecord, 64)
		p.recWG.Add(1)
		go p.recordLoop(p.recCh)
	}
	go p.profileLoop()
	return nil
}

// profileLoop is the profiling thread: request, reduce, hand off, repeat.
func (p *Profiler) profileLoop() {
	defer close(p.doneCh)
	seq := int64(0)
	for {
		resp, err := p.client.NextProfile()
		if err != nil {
			p.fail(fmt.Errorf("profiler: profile request: %w", err))
			break
		}
		breakpointHit := false
		if len(resp.Events) > 0 {
			rec := trace.Reduce(seq, resp.WindowStart, resp.Events, resp.IdleFrac, resp.MXUUtil)
			rec.Truncated = rec.Truncated || resp.Truncated
			seq++
			p.mu.Lock()
			p.records = append(p.records, rec)
			ch := p.recCh
			p.mu.Unlock()
			if ch != nil {
				ch <- rec
			}
			if bp := p.opts.BreakpointStep; bp > 0 {
				for _, s := range rec.Steps {
					if s.Step >= bp {
						breakpointHit = true
						break
					}
				}
			}
		}
		if resp.EndOfStream || breakpointHit {
			break
		}
		p.mu.Lock()
		stopping := p.stopping
		p.mu.Unlock()
		if stopping && len(resp.Events) == 0 {
			// Final request made and nothing new arrived: done.
			break
		}
		if len(resp.Events) == 0 {
			time.Sleep(p.opts.Interval)
		}
	}
	p.mu.Lock()
	ch := p.recCh
	p.recCh = nil
	p.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// recordLoop is the recording thread: persist records as they arrive so
// the profiling thread can keep requesting the next profile.
func (p *Profiler) recordLoop(ch <-chan *trace.ProfileRecord) {
	defer p.recWG.Done()
	i := 0
	for rec := range ch {
		name := fmt.Sprintf("%srecord-%06d", p.opts.ObjectPrefix, i)
		i++
		if _, err := p.opts.Bucket.Put(name, trace.MarshalRecord(rec)); err != nil {
			p.fail(fmt.Errorf("profiler: recording %s: %w", name, err))
			return
		}
	}
}

func (p *Profiler) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Stop sends the final profile request, waits for both goroutines to
// drain, and returns the collected records.
func (p *Profiler) Stop() ([]*trace.ProfileRecord, error) {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return nil, errors.New("profiler: not started")
	}
	p.stopping = true
	done := p.doneCh
	p.mu.Unlock()

	<-done
	p.recWG.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	p.started = false
	p.stopping = false
	return p.records, p.err
}

// Records returns the records collected so far (safe to call while
// profiling; returns a snapshot).
func (p *Profiler) Records() []*trace.ProfileRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*trace.ProfileRecord, len(p.records))
	copy(out, p.records)
	return out
}

// LoadRecords reads persisted records back from storage, ordered by
// sequence number — the input to offline TPUPoint-Analyzer runs.
func LoadRecords(b *storage.Bucket, prefix string) ([]*trace.ProfileRecord, error) {
	if prefix == "" {
		prefix = "profiles/"
	}
	names := b.List(prefix)
	out := make([]*trace.ProfileRecord, 0, len(names))
	for _, name := range names {
		obj, err := b.Get(name)
		if err != nil {
			return nil, err
		}
		rec, err := trace.UnmarshalRecord(obj.Data)
		if err != nil {
			return nil, fmt.Errorf("profiler: decoding %s: %w", name, err)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}
