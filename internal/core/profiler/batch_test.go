package profiler

import (
	"strings"
	"testing"

	"repro/internal/archive"
	"repro/internal/storage"
	"repro/internal/trace"
)

// TestBatchRecordsRoundTripPlainBucket runs the profiler with batching
// enabled against a plain bucket (no BatchStore fast path): batches land
// as framed batch-* objects and LoadRecords must reassemble the exact
// record stream the profiler returned.
func TestBatchRecordsRoundTripPlainBucket(t *testing.T) {
	r := fixture(t, 2000)
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("b")
	p := New(&ServiceClient{Service: r.ProfileService()},
		Options{Bucket: bucket, BatchRecords: 8})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records collected")
	}

	names := bucket.List("profiles/")
	if len(names) == 0 {
		t.Fatal("nothing persisted")
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "profiles/batch-") {
			t.Fatalf("batching enabled but object %q is not a batch", name)
		}
	}

	loaded, err := LoadRecords(bucket, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(records) {
		t.Fatalf("loaded %d of %d records", len(loaded), len(records))
	}
	for i, rec := range loaded {
		if rec.Seq != records[i].Seq || rec.NumEvents != records[i].NumEvents {
			t.Fatalf("record %d: seq=%d events=%d, want seq=%d events=%d",
				i, rec.Seq, rec.NumEvents, records[i].Seq, records[i].NumEvents)
		}
	}
}

// TestBatchRecordsArchiveSink exercises the BatchStore fast path: the
// sink must accept whole framed batches and finalize into an archive
// holding every record in order.
func TestBatchRecordsArchiveSink(t *testing.T) {
	r := fixture(t, 2000)
	sink := NewArchiveSink(archive.Meta{RunID: "batched", Workload: "synthetic"})
	p := New(&ServiceClient{Service: r.ProfileService()},
		Options{Bucket: sink, BatchRecords: 8})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.Records(); got != int64(len(records)) {
		t.Fatalf("sink holds %d of %d records", got, len(records))
	}
	blob, err := sink.Finalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := archive.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range got {
		if rec.Seq != records[i].Seq {
			t.Fatalf("archive record %d has seq %d, want %d", i, rec.Seq, records[i].Seq)
		}
	}
}

// TestBatchRecordsDefaultUnchanged pins backward compatibility: with
// BatchRecords unset the profiler still writes one record-* object per
// record, so pre-batching readers keep working.
func TestBatchRecordsDefaultUnchanged(t *testing.T) {
	r := fixture(t, 800)
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("b")
	p := New(&ServiceClient{Service: r.ProfileService()}, Options{Bucket: bucket})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	names := bucket.List("profiles/")
	if len(names) != len(records) {
		t.Fatalf("%d objects for %d records; default must stay one per record",
			len(names), len(records))
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "profiles/record-") {
			t.Fatalf("default-mode object %q is not a record object", name)
		}
	}
}

// TestArchiveSinkPutBatchValidates covers the sink's batch error paths:
// count mismatch and malformed frames reject atomically.
func TestArchiveSinkPutBatchValidates(t *testing.T) {
	sink := NewArchiveSink(archive.Meta{RunID: "x"})
	rec := &trace.ProfileRecord{Seq: 1, WindowStart: 0, WindowEnd: 10}
	framed := trace.AppendFramedRecord(nil, rec)

	if _, err := sink.PutBatch("b", framed, 2); err == nil {
		t.Fatal("count mismatch accepted")
	}
	bad := append(append([]byte(nil), framed...), 2, 0x00, 0x01)
	if _, err := sink.PutBatch("b", bad, 2); err == nil {
		t.Fatal("malformed frame accepted")
	}
	if got := sink.Records(); got != 0 {
		t.Fatalf("rejected batches landed %d records", got)
	}
	if _, err := sink.PutBatch("b", framed, 1); err != nil {
		t.Fatal(err)
	}
	if got := sink.Records(); got != 1 {
		t.Fatalf("sink holds %d records, want 1", got)
	}
}
