package profiler

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/archive"
	"repro/internal/storage"
	"repro/internal/trace"
)

// ArchiveSink is a RecordStore that accumulates the recording thread's
// records straight into an archive writer. Set it as Options.Bucket and
// the profiler's persisted stream becomes an archive.Finalize away from
// a repository entry — no intermediate per-record objects.
//
// Safe for concurrent use: the recording goroutine writes while the
// run's end-of-life path finalizes.
type ArchiveSink struct {
	mu        sync.Mutex
	w         *archive.Writer
	finalized bool
}

// ErrSinkFinalized is returned for writes after Finalize.
var ErrSinkFinalized = errors.New("profiler: archive sink already finalized")

// NewArchiveSink starts an empty sink for the given run metadata.
func NewArchiveSink(meta archive.Meta) *ArchiveSink {
	return &ArchiveSink{w: archive.NewWriter(meta)}
}

// Put implements RecordStore: data must be a wire-encoded record. The
// object name is accepted for interface compatibility but not stored —
// archives order records by arrival.
func (s *ArchiveSink) Put(name string, data []byte) (*storage.Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return nil, ErrSinkFinalized
	}
	if err := s.w.AddRaw(data); err != nil {
		return nil, err
	}
	return &storage.Object{Name: name, Data: append([]byte(nil), data...)}, nil
}

// PutBatch implements BatchStore: framed is a trace framed stream of
// count records, appended to the archive in order (atomically — a bad
// frame rejects the whole batch). Like Put, the object name is accepted
// but not stored.
func (s *ArchiveSink) PutBatch(name string, framed []byte, count int) (*storage.Object, error) {
	frames, err := trace.SplitFramed(framed)
	if err != nil {
		return nil, err
	}
	if len(frames) != count {
		return nil, fmt.Errorf("profiler: batch %s carries %d records, caller said %d",
			name, len(frames), count)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return nil, ErrSinkFinalized
	}
	if _, err := s.w.AddRawBatch(framed); err != nil {
		return nil, err
	}
	return &storage.Object{Name: name}, nil
}

// Records reports how many records the sink holds.
func (s *ArchiveSink) Records() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Records()
}

// Finalize seals the sink into archive bytes, embedding sum (which may
// be nil). Further Puts fail with ErrSinkFinalized.
func (s *ArchiveSink) Finalize(sum *archive.Summary) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return nil, ErrSinkFinalized
	}
	s.finalized = true
	return s.w.Finalize(sum), nil
}
