package profiler

import (
	"strings"
	"testing"

	"repro/internal/estimator"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// fixture runs a short training job and returns its runner.
func fixture(t testing.TB, steps int) *estimator.Runner {
	t.Helper()
	w := workloads.MustGet("dcgan-mnist")
	r, err := estimator.New(w, estimator.Options{Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestProfilerCollectsWholeRun(t *testing.T) {
	r := fixture(t, 120)
	p := New(&ServiceClient{Service: r.ProfileService()}, Options{})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records")
	}
	var events int64
	for i, rec := range records {
		events += rec.NumEvents
		if rec.Seq != int64(i) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	if events != int64(len(r.Events())) {
		t.Fatalf("records summarize %d events, run produced %d", events, len(r.Events()))
	}
	// Records carry device metadata.
	if records[len(records)-1].IdleFrac <= 0 {
		t.Fatalf("record metadata missing: %+v", records[len(records)-1])
	}
}

func TestProfilerAnalyzerModePersistsRecords(t *testing.T) {
	r := fixture(t, 100)
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("tpupoint")
	p := New(&ServiceClient{Service: r.ProfileService()}, Options{Bucket: bucket})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	names := bucket.List("profiles/")
	if len(names) != len(records) {
		t.Fatalf("bucket has %d objects, profiler returned %d records", len(names), len(records))
	}
	loaded, err := LoadRecords(bucket, "profiles/")
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(records) {
		t.Fatalf("loaded %d records", len(loaded))
	}
	for i := range loaded {
		if loaded[i].Seq != records[i].Seq || loaded[i].NumEvents != records[i].NumEvents {
			t.Fatalf("record %d mismatch after round trip", i)
		}
	}
}

func TestProfilerAnalyzerModeRequiresBucket(t *testing.T) {
	r := fixture(t, 20)
	p := New(&ServiceClient{Service: r.ProfileService()}, Options{})
	if err := p.Start(true); err == nil {
		t.Fatal("analyzer mode without bucket accepted")
	}
}

func TestProfilerDoubleStart(t *testing.T) {
	r := fixture(t, 20)
	p := New(&ServiceClient{Service: r.ProfileService()}, Options{})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(false); err == nil {
		t.Fatal("double Start accepted")
	}
	if _, err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerStopWithoutStart(t *testing.T) {
	p := New(&ServiceClient{}, Options{})
	if _, err := p.Stop(); err == nil {
		t.Fatal("Stop without Start accepted")
	}
}

func TestProfilerOverRPC(t *testing.T) {
	r := fixture(t, 80)
	srv := rpc.NewServer()
	r.ProfileService().Register(srv)
	defer srv.Close()
	conn := rpc.Pipe(srv)
	defer conn.Close()

	p := New(&RPCClient{Conn: conn}, Options{})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	var events int64
	for _, rec := range records {
		events += rec.NumEvents
	}
	if events != int64(len(r.Events())) {
		t.Fatalf("RPC profiler got %d of %d events", events, len(r.Events()))
	}
}

func TestProfilerRecordsTopOpsMatchRun(t *testing.T) {
	r := fixture(t, 100)
	p := New(&ServiceClient{Service: r.ProfileService()}, Options{})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	steps := trace.AggregateSteps(records)
	top := trace.TopOps(steps, trace.TPU, 3)
	if len(top) == 0 {
		t.Fatal("no top ops from records")
	}
	names := make([]string, len(top))
	for i, op := range top {
		names[i] = op.Name
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "fusion") {
		t.Fatalf("fusion missing from top TPU ops: %v", names)
	}
}

func TestProfilerWhileTrainingRuns(t *testing.T) {
	// Start the profiler BEFORE training and run training concurrently:
	// the Figure 2 usage (Start → estimator.train → Stop).
	w := workloads.MustGet("dcgan-mnist")
	r, err := estimator.New(w, estimator.Options{Steps: 150})
	if err != nil {
		t.Fatal(err)
	}
	p := New(&ServiceClient{Service: r.ProfileService()}, Options{})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	var events int64
	for _, rec := range records {
		events += rec.NumEvents
	}
	if events != int64(len(r.Events())) {
		t.Fatalf("live profiling got %d of %d events", events, len(r.Events()))
	}
}

func TestLoadRecordsBadData(t *testing.T) {
	svc := storage.NewService()
	b, _ := svc.CreateBucket("x")
	b.Put("profiles/record-000000", []byte{0x00, 0x01})
	if _, err := LoadRecords(b, ""); err == nil {
		t.Fatal("corrupt record accepted")
	}
}

func BenchmarkProfileWholeRun(b *testing.B) {
	r := fixture(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(&ServiceClient{Service: r.ProfileService()}, Options{})
		if err := p.Start(false); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Stop(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProfilerBreakpoint(t *testing.T) {
	// A long run with a 60s+ span so multiple windows exist; break at an
	// early step and confirm later activity is never collected.
	r := fixture(t, 800)
	p := New(&ServiceClient{Service: r.ProfileService()}, Options{BreakpointStep: 200})
	if err := p.Start(false); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records before the breakpoint")
	}
	var events int64
	for _, rec := range records {
		events += rec.NumEvents
	}
	if events >= int64(len(r.Events())) {
		t.Fatal("breakpoint did not stop profiling early")
	}
	// The breakpoint step itself was covered.
	covered := false
	for _, rec := range records {
		for _, s := range rec.Steps {
			if s.Step >= 200 {
				covered = true
			}
		}
	}
	if !covered {
		t.Fatal("profiling stopped before reaching the breakpoint")
	}
}
