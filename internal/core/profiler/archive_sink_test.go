package profiler

import (
	"errors"
	"testing"

	"repro/internal/archive"
	"repro/internal/simclock"
	"repro/internal/tpu"
	"repro/internal/trace"
)

func TestArchiveSink(t *testing.T) {
	sink := NewArchiveSink(archive.Meta{RunID: "sink-run", Workload: "w"})
	var _ RecordStore = sink

	var ts simclock.Time
	for i := 0; i < 5; i++ {
		rec := trace.Reduce(int64(i), ts, []trace.Event{
			{Name: "MatMul", Device: trace.TPU, Start: ts, Dur: 100, Step: int64(i)},
		}, 0.1, 0.5)
		if _, err := sink.Put("profiles/record-000001", trace.MarshalRecord(rec)); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(1000)
	}
	if sink.Records() != 5 {
		t.Fatalf("records = %d", sink.Records())
	}

	// Malformed writes are rejected without corrupting the sink.
	if _, err := sink.Put("bad", []byte{0xff}); err == nil {
		t.Fatal("malformed record accepted")
	}

	blob, err := sink.Finalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := archive.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordCount() != 5 || a.Meta().RunID != "sink-run" {
		t.Fatalf("archive: %d records, meta %+v", a.RecordCount(), a.Meta())
	}

	if _, err := sink.Put("late", nil); !errors.Is(err, ErrSinkFinalized) {
		t.Fatalf("post-finalize put: %v", err)
	}
	if _, err := sink.Finalize(nil); !errors.Is(err, ErrSinkFinalized) {
		t.Fatalf("double finalize: %v", err)
	}
}

// scriptedSinkClient plays back a fixed sequence of profile windows,
// then reports end of stream.
type scriptedSinkClient struct {
	responses []*tpu.ProfileResponse
	next      int
}

func (c *scriptedSinkClient) NextProfile() (*tpu.ProfileResponse, error) {
	if c.next >= len(c.responses) {
		return &tpu.ProfileResponse{EndOfStream: true}, nil
	}
	r := c.responses[c.next]
	c.next++
	return r, nil
}

// TestProfilerIntoArchiveSink runs the real profiler loop against the
// sink, proving the persisted stream round-trips into an archive.
func TestProfilerIntoArchiveSink(t *testing.T) {
	var responses []*tpu.ProfileResponse
	var ts simclock.Time
	for i := 0; i < 3; i++ {
		responses = append(responses, &tpu.ProfileResponse{
			Events: []trace.Event{
				{Name: "MatMul", Device: trace.TPU, Start: ts, Dur: 100, Step: int64(i)},
			},
			WindowStart: ts,
			WindowEnd:   ts.Add(1000),
			IdleFrac:    0.2,
			MXUUtil:     0.3,
		})
		ts = ts.Add(1000)
	}
	sink := NewArchiveSink(archive.Meta{RunID: "live"})
	p := New(&scriptedSinkClient{responses: responses}, Options{Bucket: sink})
	if err := p.Start(true); err != nil {
		t.Fatal(err)
	}
	got, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("profiler returned %d records", len(got))
	}
	blob, err := sink.Finalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := archive.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordCount() != 3 {
		t.Fatalf("archived %d records", a.RecordCount())
	}
}
