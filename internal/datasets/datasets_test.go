package datasets

import (
	"testing"

	"repro/internal/storage"
)

func TestCatalogComplete(t *testing.T) {
	for _, name := range Names() {
		d, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if d.SizeBytes <= 0 || d.Records <= 0 || d.DecodedBytes <= 0 {
			t.Fatalf("%s has degenerate fields: %+v", name, d)
		}
		if d.RecordBytes() < 1 {
			t.Fatalf("%s record bytes = %d", name, d.RecordBytes())
		}
	}
}

func TestTable1Sizes(t *testing.T) {
	// Spot-check against Table I (within 1%).
	cases := map[string]float64{
		"squad":    422.27,
		"mrpc":     2.85,
		"mnli":     430.61,
		"cola":     1.44,
		"cifar10":  178.87,
		"mnist":    56.21,
		"coco":     48.49 * 1024,
		"imagenet": 143.38 * 1024,
	}
	for name, wantMiB := range cases {
		d := MustGet(name)
		gotMiB := float64(d.SizeBytes) / (1 << 20)
		if gotMiB < wantMiB*0.99 || gotMiB > wantMiB*1.01 {
			t.Errorf("%s size = %.2f MiB, want %.2f", name, gotMiB, wantMiB)
		}
	}
}

func TestKinds(t *testing.T) {
	for _, name := range []string{"squad", "mrpc", "mnli", "cola"} {
		if MustGet(name).Kind != Text {
			t.Errorf("%s should be text", name)
		}
	}
	for _, name := range []string{"cifar10", "mnist", "coco", "imagenet"} {
		if MustGet(name).Kind != Image {
			t.Errorf("%s should be image", name)
		}
	}
	if Text.String() != "text" || Image.String() != "image" {
		t.Error("kind names")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("fake"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet did not panic")
		}
	}()
	MustGet("nope")
}

func TestHalved(t *testing.T) {
	d := MustGet("squad")
	h := d.Halved()
	if h.Records != d.Records/2 || h.SizeBytes != d.SizeBytes/2 {
		t.Fatalf("halved: %+v", h)
	}
	if h.Name != "squad-half" {
		t.Fatalf("halved name %q", h.Name)
	}
	if h.DecodedBytes != d.DecodedBytes {
		t.Fatal("halving changed decoded record size")
	}
	// Halving a degenerate 1-record set stays valid.
	tiny := Dataset{Name: "t", Records: 1, SizeBytes: 10, DecodedBytes: 1}
	if tiny.Halved().Records != 1 {
		t.Fatal("halved records hit zero")
	}
}

func TestGenerate(t *testing.T) {
	svc := storage.NewService()
	b, _ := svc.CreateBucket("data")
	n, err := Generate(b, MustGet("mrpc"), 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("generated %d records", n)
	}
	objs := b.List("mrpc/records/")
	if len(objs) != 100 {
		t.Fatalf("bucket holds %d objects", len(objs))
	}
	sz, err := b.Size(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	if want := MustGet("mrpc").RecordBytes(); sz != want {
		t.Fatalf("record size = %d, want %d", sz, want)
	}
}

func TestGenerateCapsAtDatasetSize(t *testing.T) {
	svc := storage.NewService()
	b, _ := svc.CreateBucket("data")
	tiny := Dataset{Name: "t", Kind: Text, SizeBytes: 1000, Records: 7, DecodedBytes: 10}
	n, err := Generate(b, tiny, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("generated %d, want 7", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	svc := storage.NewService()
	b1, _ := svc.CreateBucket("d1")
	b2, _ := svc.CreateBucket("d2")
	Generate(b1, MustGet("cola"), 10, 7)
	Generate(b2, MustGet("cola"), 10, 7)
	o1, _ := b1.Get("cola/records/000003")
	o2, _ := b2.Get("cola/records/000003")
	if string(o1.Data) != string(o2.Data) {
		t.Fatal("generation not deterministic")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, MustGet("cola"), 10, 1); err == nil {
		t.Fatal("nil bucket accepted")
	}
	svc := storage.NewService()
	b, _ := svc.CreateBucket("d")
	if _, err := Generate(b, MustGet("cola"), 0, 1); err == nil {
		t.Fatal("zero maxRecords accepted")
	}
}

func TestGenerateCapsHugePayloads(t *testing.T) {
	svc := storage.NewService()
	b, _ := svc.CreateBucket("d")
	// COCO records average ~430KB; payloads must be capped at 64KiB.
	if _, err := Generate(b, MustGet("coco"), 3, 1); err != nil {
		t.Fatal(err)
	}
	sz, _ := b.Size("coco/records/000000")
	if sz > 64<<10 {
		t.Fatalf("payload %d exceeds cap", sz)
	}
}
