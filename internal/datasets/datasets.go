// Package datasets provides the synthetic stand-ins for the paper's
// training datasets (Table I).
//
// Only three properties of a dataset matter to anything TPUPoint can
// observe: how many records it has, how large the stored records are (that
// sets read and decode cost), and how large the decoded tensors are (that
// sets infeed traffic). Each catalog entry reproduces those from the
// paper's Table I sizes and the public record counts of the real datasets;
// Generate materializes deterministic pseudo-records into a storage bucket
// so the pipeline reads real bytes.
package datasets

import (
	"errors"
	"fmt"

	"repro/internal/prng"
	"repro/internal/storage"
)

// Kind is the record modality, which selects the host pipeline shape.
type Kind uint8

// Modalities.
const (
	Text Kind = iota
	Image
)

func (k Kind) String() string {
	if k == Image {
		return "image"
	}
	return "text"
}

// Dataset describes one dataset as the simulator needs it.
type Dataset struct {
	Name      string
	Kind      Kind
	SizeBytes int64 // total stored size (Table I)
	Records   int64 // record count of the real dataset

	// DecodedBytes is the per-record tensor size after host decode for
	// the default model configuration that consumes this dataset.
	DecodedBytes int64
}

// RecordBytes returns the average stored record size.
func (d Dataset) RecordBytes() int64 {
	if d.Records == 0 {
		return 0
	}
	b := d.SizeBytes / d.Records
	if b < 1 {
		b = 1
	}
	return b
}

// Halved returns the dataset cut in half — the reduced-dataset variants of
// the paper's Figure 12/13 experiments.
func (d Dataset) Halved() Dataset {
	h := d
	h.Name = d.Name + "-half"
	h.SizeBytes = d.SizeBytes / 2
	h.Records = d.Records / 2
	if h.Records < 1 {
		h.Records = 1
	}
	return h
}

const (
	mib = int64(1) << 20
	gib = int64(1) << 30
)

// The catalog, from Table I (sizes) and the public record counts.
var catalog = map[string]Dataset{
	"squad": {
		Name: "squad", Kind: Text,
		SizeBytes: 422*mib + 276*mib/1024, // 422.27 MiB
		Records:   87_599,
		// BERT max_seq_length=128: ids+mask+segments as int32 + label.
		DecodedBytes: 3 * 128 * 4,
	},
	"mrpc": {
		Name: "mrpc", Kind: Text,
		SizeBytes:    2*mib + 870*mib/1024, // 2.85 MiB
		Records:      3_668,
		DecodedBytes: 3 * 128 * 4,
	},
	"mnli": {
		Name: "mnli", Kind: Text,
		SizeBytes:    430*mib + 625*mib/1024, // 430.61 MiB
		Records:      392_702,
		DecodedBytes: 3 * 128 * 4,
	},
	"cola": {
		Name: "cola", Kind: Text,
		SizeBytes:    1*mib + 450*mib/1024, // 1.44 MiB
		Records:      8_551,
		DecodedBytes: 3 * 128 * 4,
	},
	"cifar10": {
		Name: "cifar10", Kind: Image,
		SizeBytes: 178*mib + 891*mib/1024, // 178.87 MiB
		Records:   50_000,
		// 32x32x3 float32 after normalization.
		DecodedBytes: 32 * 32 * 3 * 4,
	},
	"mnist": {
		Name: "mnist", Kind: Image,
		SizeBytes:    56*mib + 215*mib/1024, // 56.21 MiB
		Records:      60_000,
		DecodedBytes: 28 * 28 * 1 * 4,
	},
	"coco": {
		Name: "coco", Kind: Image,
		SizeBytes: 48*gib + 502*gib/1024, // 48.49 GiB
		Records:   118_287,
		// RetinaNet image_size=640: 640x640x3 float32 + padded boxes.
		DecodedBytes: 640*640*3*4 + 64<<10,
	},
	"imagenet": {
		Name: "imagenet", Kind: Image,
		SizeBytes: 143*gib + 389*gib/1024, // 143.38 GiB
		Records:   1_281_167,
		// ResNet-50 224x224x3 float32.
		DecodedBytes: 224 * 224 * 3 * 4,
	},
}

// Names returns all catalog dataset names (unsorted map order is hidden
// behind a fixed list so output is stable).
func Names() []string {
	return []string{"squad", "mrpc", "mnli", "cola", "cifar10", "mnist", "coco", "imagenet"}
}

// Get returns a catalog dataset by name.
func Get(name string) (Dataset, error) {
	d, ok := catalog[name]
	if !ok {
		return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	return d, nil
}

// MustGet is Get for static names; it panics on a typo.
func MustGet(name string) Dataset {
	d, err := Get(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Generate materializes up to maxRecords deterministic records of the
// dataset into bucket under "<name>/records/NNNNNN". It returns the number
// of records written. Record payloads are pseudo-random bytes of the
// dataset's average record size, so pipeline reads exercise real storage
// traffic at the right per-record scale.
func Generate(b *storage.Bucket, d Dataset, maxRecords int, seed uint64) (int, error) {
	if b == nil {
		return 0, errors.New("datasets: nil bucket")
	}
	if maxRecords <= 0 {
		return 0, errors.New("datasets: maxRecords must be positive")
	}
	n := int64(maxRecords)
	if n > d.Records {
		n = d.Records
	}
	rng := prng.New(seed)
	recBytes := d.RecordBytes()
	// Cap generated record payloads: huge image records would make the
	// in-memory store balloon without changing anything observable.
	const maxPayload = 64 << 10
	payload := recBytes
	if payload > maxPayload {
		payload = maxPayload
	}
	buf := make([]byte, payload)
	for i := int64(0); i < n; i++ {
		for j := range buf {
			buf[j] = byte(rng.Uint64())
		}
		name := fmt.Sprintf("%s/records/%06d", d.Name, i)
		if _, err := b.Put(name, buf); err != nil {
			return int(i), err
		}
	}
	return int(n), nil
}
