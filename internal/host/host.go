// Package host models the Compute Engine VM that drives a Cloud TPU: the
// tf.data-style input pipeline (read → decode/augment → linearize →
// transfer-to-infeed), the outfeed dequeue path, and the per-step session
// bookkeeping.
//
// The paper's central finding is that these host-side stages — not the
// matrix math — bound TPU workloads: TransferBufferToInfeedLocked and
// OutfeedDequeueTuple top every host profile, and TPUs sit idle ~39-44% of
// the time waiting on them. The pipeline here is therefore modeled with
// enough structure for those effects to *emerge*: each stage is a
// simclock.Resource with a thread-count capacity, batches queue through the
// stages, prefetch depth bounds how far the pipeline runs ahead, and epoch
// boundaries stall the reader while the shuffle buffer refills.
//
// Params carries the paper's "adjustable parameters" (buffer sizes, thread
// counts) — the exact knobs TPUPoint-Optimizer turns.
package host

import (
	"errors"
	"fmt"

	"repro/internal/prng"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Spec describes the host VM hardware (the paper's instances: 16-core
// 2-way-SMT Skylake, 104 GB RAM, GCS-backed storage).
type Spec struct {
	Cores int

	// ReadMBps is streaming throughput from the storage bucket, per
	// reader thread, in MB/s.
	ReadMBps float64

	// DecodeMBpsPerThread is decode/augment throughput per worker thread
	// in MB/s of *raw* input.
	DecodeMBpsPerThread float64

	// PerRecordOverheadUs is fixed per-record CPU cost (dispatch, proto
	// parse) in µs, independent of record size.
	PerRecordOverheadUs float64

	// MemGBps is host memory bandwidth for linearize/pad stages, GB/s.
	MemGBps float64

	// PCIeGBps is host→TPU transfer bandwidth, GB/s. Must agree with the
	// device's InfeedGBps.
	PCIeGBps float64

	// TransferLockUs is the fixed cost of acquiring the infeed lock per
	// TransferBufferToInfeedLocked call.
	TransferLockUs float64

	// EpochRestartUs is the fixed cost of an epoch boundary: reopening
	// input files and restarting the dataset iterator, independent of the
	// shuffle-buffer refill that follows.
	EpochRestartUs float64
}

// ErrBadSpec rejects host hardware specs that cannot describe a real
// machine (non-positive core counts or bandwidths). Before validation these
// produced silently nonsensical simulations — zero-bandwidth links turn
// into divide-by-zero infinities that propagate into every stage time.
var ErrBadSpec = errors.New("host: invalid host spec")

// Validate rejects hardware specs with non-positive core counts or
// bandwidths, and negative fixed overheads.
func (s Spec) Validate() error {
	if s.Cores < 1 {
		return fmt.Errorf("%w: Cores = %d, must be >= 1", ErrBadSpec, s.Cores)
	}
	rates := []struct {
		name string
		v    float64
	}{
		{"ReadMBps", s.ReadMBps},
		{"DecodeMBpsPerThread", s.DecodeMBpsPerThread},
		{"MemGBps", s.MemGBps},
		{"PCIeGBps", s.PCIeGBps},
	}
	for _, r := range rates {
		if !(r.v > 0) { // rejects zero, negatives, and NaN
			return fmt.Errorf("%w: %s = %g, must be > 0", ErrBadSpec, r.name, r.v)
		}
	}
	overheads := []struct {
		name string
		v    float64
	}{
		{"PerRecordOverheadUs", s.PerRecordOverheadUs},
		{"TransferLockUs", s.TransferLockUs},
		{"EpochRestartUs", s.EpochRestartUs},
	}
	for _, o := range overheads {
		if o.v < 0 || o.v != o.v {
			return fmt.Errorf("%w: %s = %g, must be >= 0", ErrBadSpec, o.name, o.v)
		}
	}
	return nil
}

// DefaultSpec returns the paper's host instance.
func DefaultSpec() Spec {
	return Spec{
		Cores:               16,
		ReadMBps:            400,
		DecodeMBpsPerThread: 120,
		PerRecordOverheadUs: 15,
		MemGBps:             20,
		PCIeGBps:            10,
		TransferLockUs:      50,
		EpochRestartUs:      8000,
	}
}

// Params are the adjustable input-pipeline parameters — what a programmer
// sets on tf.data and what TPUPoint-Optimizer tunes at runtime.
type Params struct {
	ReaderThreads int // parallel dataset readers
	DecodeThreads int // num_parallel_calls on the decode/augment map
	PrefetchDepth int // prefetch buffer capacity, in batches
	InfeedThreads int // threads preparing/linearizing infeed buffers
	ShuffleBuffer int // shuffle buffer size, in records
}

// DefaultParams is a reasonably hand-tuned configuration, standing in for
// the Google-engineer-optimized reference models.
func DefaultParams() Params {
	return Params{
		ReaderThreads: 4,
		DecodeThreads: 8,
		PrefetchDepth: 4,
		InfeedThreads: 2,
		ShuffleBuffer: 8192,
	}
}

// NaiveParams is the "reasonably written but untuned" configuration the
// paper's naive implementations use (Section VII-C).
func NaiveParams() Params {
	return Params{
		ReaderThreads: 1,
		DecodeThreads: 1,
		PrefetchDepth: 1,
		InfeedThreads: 1,
		ShuffleBuffer: 1024,
	}
}

// Validate rejects parameter values that cannot run.
func (p Params) Validate() error {
	if p.ReaderThreads < 1 || p.DecodeThreads < 1 || p.InfeedThreads < 1 {
		return errors.New("host: thread counts must be >= 1")
	}
	if p.PrefetchDepth < 1 {
		return errors.New("host: prefetch depth must be >= 1")
	}
	if p.ShuffleBuffer < 1 {
		return errors.New("host: shuffle buffer must be >= 1")
	}
	return nil
}

// Clamp bounds p to the ranges a 16-core host supports. The optimizer
// calls this after every tuning move so exploration can't wedge the host.
func (p Params) Clamp(spec Spec) Params {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	threads := 2 * spec.Cores // SMT
	p.ReaderThreads = clamp(p.ReaderThreads, 1, threads)
	p.DecodeThreads = clamp(p.DecodeThreads, 1, threads)
	p.InfeedThreads = clamp(p.InfeedThreads, 1, 8)
	p.PrefetchDepth = clamp(p.PrefetchDepth, 1, 64)
	p.ShuffleBuffer = clamp(p.ShuffleBuffer, 1, 1<<20)
	return p
}

func (p Params) String() string {
	return fmt.Sprintf("readers=%d decode=%d prefetch=%d infeed=%d shuffle=%d",
		p.ReaderThreads, p.DecodeThreads, p.PrefetchDepth, p.InfeedThreads, p.ShuffleBuffer)
}

// InputSpec describes one workload's input stream as the pipeline sees it.
type InputSpec struct {
	Name string

	BatchSize int

	// RecordBytes is the average stored record size; DecodedBytes the
	// per-record size after decode/augment (what crosses PCIe).
	RecordBytes  int64
	DecodedBytes int64

	// Records is the dataset's record count; crossing it is an epoch
	// boundary and triggers a shuffle-buffer refill stall.
	Records int64

	// ImagePipeline selects the image op sequence (DecodeAndCropJpeg,
	// ResizeBicubic, Cast, Sub) over the NLP one (BuildPaddedOutput,
	// Cast, Minimum, Maximum).
	ImagePipeline bool

	// ExtraDecodeUsPerRecord is additional per-record CPU work in the
	// parallelizable part of the decode stage (tokenization, image
	// augmentation). Workload definitions calibrate it.
	ExtraDecodeUsPerRecord float64

	// SerialUsPerBatch is the non-parallelizable per-batch host work in
	// the decode stage (Python-side dispatch, batching, bookkeeping).
	// It does not shrink with DecodeThreads, which is what bounds how
	// much an auto-tuner can recover — the serial fraction of Amdahl's
	// law for the input pipeline.
	SerialUsPerBatch float64
}

// BatchRawBytes returns the stored bytes consumed per batch.
func (in InputSpec) BatchRawBytes() int64 {
	return int64(in.BatchSize) * in.RecordBytes
}

// BatchDecodedBytes returns the bytes transferred to the TPU per batch.
func (in InputSpec) BatchDecodedBytes() int64 {
	return int64(in.BatchSize) * in.DecodedBytes
}

// Host is the pipeline instance for one training run.
type Host struct {
	spec   Spec
	params Params
	input  InputSpec
	rng    *prng.Source

	readers    *simclock.Resource
	decoders   *simclock.Resource
	linearize  *simclock.Resource
	transfer   *simclock.Resource
	outfeedRes *simclock.Resource

	events    []trace.Event
	consumed  int64 // records read so far (for epoch boundaries)
	nextReady simclock.Time
}

// New builds a host with the given configuration. Spec and Params are
// validated.
func New(spec Spec, params Params, input InputSpec, seed uint64) (*Host, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if input.BatchSize < 1 || input.RecordBytes < 1 || input.DecodedBytes < 1 || input.Records < 1 {
		return nil, fmt.Errorf("host: invalid input spec %+v", input)
	}
	// Params.Validate guarantees positive thread counts, so resource
	// construction cannot fail here.
	return &Host{
		spec:       spec,
		params:     params,
		input:      input,
		rng:        prng.New(seed),
		readers:    simclock.MustResource("readers", params.ReaderThreads),
		decoders:   simclock.MustResource("decoders", 1),
		linearize:  simclock.MustResource("linearize", params.InfeedThreads),
		transfer:   simclock.MustResource("infeed-link", 1),
		outfeedRes: simclock.MustResource("outfeed-link", 1),
	}, nil
}

// Params returns the active pipeline parameters.
func (h *Host) Params() Params { return h.params }

// Input returns the input spec.
func (h *Host) Input() InputSpec { return h.input }

// SetParams swaps pipeline parameters mid-run (the optimizer's rewrite).
// Resource capacities are rebuilt; queued positions are not carried over,
// matching a pipeline restart at a checkpoint.
func (h *Host) SetParams(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	at := h.nextReady
	h.params = p
	h.readers = simclock.MustResource("readers", p.ReaderThreads)
	h.decoders = simclock.MustResource("decoders", 1)
	h.linearize = simclock.MustResource("linearize", p.InfeedThreads)
	h.transfer = simclock.MustResource("infeed-link", 1)
	h.outfeedRes = simclock.MustResource("outfeed-link", 1)
	h.readers.Reset(at)
	h.decoders.Reset(at)
	h.linearize.Reset(at)
	h.transfer.Reset(at)
	h.outfeedRes.Reset(at)
	return nil
}

// Instrument charges per-step instrumentation work (TPUPoint-Optimizer's
// checkpoint-before-each-call hooks) to the host: the op is recorded and
// the decode pool loses the equivalent CPU time from its critical path.
func (h *Host) Instrument(step int64, us float64) {
	dur := h.jitterDur(us)
	h.emit("TPUPointInstrumentation", h.decoders.NextFree(0), dur, step)
	h.decoders.AddDelay(dur)
}

// StallPipeline halts the whole pipeline for d (a checkpoint restore or a
// tuning rollback): every stage resumes no earlier than the current
// high-water mark plus d. A RestoreV2 op records the stall in the profile.
func (h *Host) StallPipeline(d simclock.Duration, step int64) {
	at := h.nextReady
	h.emit("RestoreV2", at, d, step)
	resume := at.Add(d)
	h.readers.Reset(resume)
	h.decoders.Reset(resume)
	h.linearize.Reset(resume)
	h.transfer.Reset(resume)
	h.outfeedRes.Reset(resume)
	h.nextReady = resume
}

// jitterDur applies ±5% service-time noise, with a 1µs floor.
func (h *Host) jitterDur(us float64) simclock.Duration {
	v := h.rng.Jitter(us, 0.05)
	if v < 1 {
		v = 1
	}
	return simclock.Duration(v + 0.5)
}

// Emit records an arbitrary host op (the estimator uses it for run-loop
// instrumentation ops that belong to the session rather than the pipeline).
func (h *Host) Emit(name string, at simclock.Time, dur simclock.Duration, step int64) {
	h.emit(name, at, dur, step)
}

func (h *Host) emit(name string, at simclock.Time, dur simclock.Duration, step int64) {
	h.events = append(h.events, trace.Event{
		Name: name, Device: trace.Host, Start: at, Dur: dur, Step: step,
	})
}

// ProduceBatch runs one batch through the pipeline. gate is the earliest
// time the pipeline may start this batch (loop-boundary syncs and
// instrumentation); slotFree is when the TPU infeed queue has room for it
// (the prefetch back-pressure point computed by the caller). The return
// value is when the batch lands in the TPU's infeed queue.
//
// Back-pressure is charged to TransferBufferToInfeedLocked: the host
// thread posts the transfer as soon as the buffer is linearized and then
// blocks holding the infeed lock until a queue slot frees — which is why
// that op dominates real host profiles (Table II).
func (h *Host) ProduceBatch(step int64, gate, slotFree simclock.Time) simclock.Time {
	in := h.input

	// Epoch boundary: restart the dataset iterator, refill the shuffle
	// buffer from storage, and drain one cold batch through the pipeline
	// before steady state resumes. The stall becomes more frequent as
	// the dataset shrinks — the mechanism behind the paper's
	// Observation 6 dataset-size sensitivity.
	epochBefore := h.consumed / in.Records
	h.consumed += int64(in.BatchSize)
	if h.consumed/in.Records != epochBefore || (epochBefore == 0 && h.consumed == int64(in.BatchSize)) {
		// The stall hits every stage's critical path: the old iterator's
		// in-flight work is discarded and each stage restarts cold, so
		// the dead time lands at the tail of whatever backlog exists.
		dur := h.jitterDur(h.EpochStallUs())
		h.emit("Recv", h.decoders.NextFree(gate), dur, step)
		h.readers.AddDelay(dur)
		h.decoders.AddDelay(dur)
		h.linearize.AddDelay(dur)
	}

	// Stage 1: read raw records from the bucket.
	readUs := float64(in.BatchRawBytes()) / h.spec.ReadMBps
	readStart, readEnd := h.readers.Acquire(gate, h.jitterDur(readUs))
	h.emit("Send", readStart, readEnd.Sub(readStart), step)

	// Stage 2: decode/augment. The worker pool processes one batch at a
	// time: the parallelizable work divides across DecodeThreads, the
	// serial per-batch work does not.
	decodeUs := in.SerialUsPerBatch + h.parallelDecodeUs()
	decStart, decEnd := h.decoders.Acquire(readEnd, h.jitterDur(decodeUs))
	if in.ImagePipeline {
		h.emit("DecodeAndCropJpeg", decStart, (decEnd.Sub(decStart))*7/10, step)
		h.emit("ResizeBicubic", decStart.Add((decEnd.Sub(decStart))*7/10), (decEnd.Sub(decStart))*2/10, step)
		h.emit("Cast", decEnd.Add(-(decEnd.Sub(decStart))/10), (decEnd.Sub(decStart))/20, step)
		h.emit("Sub", decEnd.Add(-(decEnd.Sub(decStart))/20), (decEnd.Sub(decStart))/20, step)
	} else {
		h.emit("BuildPaddedOutput", decStart, (decEnd.Sub(decStart))*8/10, step)
		h.emit("Cast", decStart.Add((decEnd.Sub(decStart))*8/10), (decEnd.Sub(decStart))/10, step)
		h.emit("Minimum", decEnd.Add(-(decEnd.Sub(decStart))/10), (decEnd.Sub(decStart))/20, step)
		h.emit("Maximum", decEnd.Add(-(decEnd.Sub(decStart))/20), (decEnd.Sub(decStart))/20, step)
	}

	// Stage 3: linearize into the padded infeed layout.
	linUs := float64(in.BatchDecodedBytes()) / (h.spec.MemGBps * 1e3)
	linStart, linEnd := h.linearize.Acquire(decEnd, h.jitterDur(linUs))
	h.emit("LinearizeX32", linStart, linEnd.Sub(linStart), step)

	// Stage 4: the PCIe transfer, serialized on the infeed lock. The copy
	// cannot begin until the queue has a slot; the op's profiled duration
	// runs from the post (linEnd) through the wait and the copy.
	copyFrom := linEnd
	if slotFree > copyFrom {
		copyFrom = slotFree
	}
	xferUs := float64(in.BatchDecodedBytes())/(h.spec.PCIeGBps*1e3) + h.spec.TransferLockUs
	_, xferEnd := h.transfer.Acquire(copyFrom, h.jitterDur(xferUs))
	h.emit("TransferBufferToInfeedLocked", linEnd, xferEnd.Sub(linEnd), step)
	h.emit("InfeedEnqueueTuple", xferEnd, h.jitterDur(10), step)

	if xferEnd > h.nextReady {
		h.nextReady = xferEnd
	}
	return xferEnd
}

// DequeueOutfeed models the host thread blocked on the TPU's outfeed: it
// posts the dequeue at requestAt, the data is available at dataReady, and
// the op's profile duration covers the wait plus the PCIe copy — which is
// why OutfeedDequeueTuple dominates host profiles.
func (h *Host) DequeueOutfeed(step int64, requestAt, dataReady simclock.Time, bytes int64) simclock.Time {
	copyUs := float64(bytes) / (h.spec.PCIeGBps * 1e3)
	start, _ := h.outfeedRes.Acquire(requestAt, 0)
	end := dataReady.Add(h.jitterDur(copyUs + 20))
	if end < start {
		end = start
	}
	h.emit("OutfeedDequeueTuple", start, end.Sub(start), step)
	h.outfeedRes.Reset(end)
	return end
}

// StepBookkeeping emits the per-step session ops (RunGraph dispatch and the
// gRPC Send/Recv pair) that appear in host profiles.
func (h *Host) StepBookkeeping(step int64, at simclock.Time) {
	run := h.jitterDur(120)
	h.emit("RunGraph", at, run, step)
	h.emit("Send", at.Add(run), h.jitterDur(25), step)
	h.emit("Recv", at.Add(run).Add(30), h.jitterDur(25), step)
}

// optionalOps are low-frequency host bookkeeping ops that appear on a
// random subset of steps (allocator rebalances, control-flow plumbing,
// variable touch-ups). They are the small step-to-step set differences
// that make OLS split phases at high similarity thresholds (paper Fig 6).
var optionalOps = []string{
	"LSRAv2", "Identity", "Merge", "Switch", "Assert", "VarHandleOp",
	"ReadVariableOp", "NoOp", "StackPopV2", "Shape", "StridedSlice", "Fill",
	"Pack", "Unpack", "Range", "Where", "Select", "BroadcastTo",
	"ZerosLike", "OnesLike", "Rank", "Size", "EnsureShape", "CheckNumerics",
}

// StepNoise emits each optional op independently with probability p on
// this step.
func (h *Host) StepNoise(step int64, at simclock.Time, p float64) {
	t := at
	for _, name := range optionalOps {
		if h.rng.Float64() < p {
			d := h.jitterDur(30)
			h.emit(name, t, d, step)
			t = t.Add(d)
		}
	}
}

// EmitSummary records the periodic summary-writing ops TensorFlow runs
// every save_summary_steps.
func (h *Host) EmitSummary(step int64, at simclock.Time) simclock.Time {
	t := at
	for _, name := range []string{"ScalarSummary", "HistogramSummary", "MergeSummary"} {
		d := h.jitterDur(80)
		h.emit(name, t, d, step)
		t = t.Add(d)
	}
	return t
}

// EmitCheckpoint records a model checkpoint save: serialize weights and
// write them to the bucket. Returns when the save completes.
func (h *Host) EmitCheckpoint(step int64, at simclock.Time, weightBytes int64) simclock.Time {
	t := at
	d := h.jitterDur(float64(weightBytes) / (h.spec.MemGBps * 1e3))
	h.emit("ShardedFilename", t, h.jitterDur(20), step)
	h.emit("SaveV2", t, d+simclock.Duration(500), step)
	t = t.Add(d + 500)
	d2 := h.jitterDur(float64(weightBytes) / (h.spec.ReadMBps * 2))
	h.emit("MergeV2Checkpoints", t, d2, step)
	return t.Add(d2)
}

// EmitInit records the session-initialization ops (program start, TPU
// system init, checkpoint restore) and returns when they finish.
func (h *Host) EmitInit(at simclock.Time, restoreBytes int64) simclock.Time {
	t := at
	d := h.jitterDur(3000)
	h.emit("InitializeHostForDistributedTpu", t, d, -1)
	t = t.Add(d)
	d = h.jitterDur(1500)
	h.emit("StartProgram", t, d, -1)
	t = t.Add(d)
	if restoreBytes > 0 {
		restoreUs := float64(restoreBytes) / (h.spec.ReadMBps)
		d = h.jitterDur(restoreUs + 500)
		h.emit("RestoreV2", t, d, -1)
		t = t.Add(d)
	}
	return t
}

// EmitShutdown records the teardown op, attributed to the given step so
// the analyzer folds it into the final phase rather than stretching the
// init pseudo-step across the whole run.
func (h *Host) EmitShutdown(step int64, at simclock.Time) simclock.Time {
	d := h.jitterDur(2000)
	h.emit("DisconnectHostFromDistributedTPUSystem", at, d, step)
	return at.Add(d)
}

// Events returns the host event stream. Callers must not mutate.
func (h *Host) Events() []trace.Event { return h.events }

// SteadyStateBatchUs estimates the pipeline's steady-state per-batch
// latency bound (the slowest stage), in µs. The optimizer uses it to
// predict whether a parameter move can help before paying for a probe run.
func (h *Host) SteadyStateBatchUs() float64 {
	in := h.input
	read := float64(in.BatchRawBytes()) / h.spec.ReadMBps / float64(h.params.ReaderThreads)
	decode := in.SerialUsPerBatch + h.parallelDecodeUs()
	lin := float64(in.BatchDecodedBytes()) / (h.spec.MemGBps * 1e3) / float64(h.params.InfeedThreads)
	xfer := float64(in.BatchDecodedBytes())/(h.spec.PCIeGBps*1e3) + h.spec.TransferLockUs
	max := read
	for _, v := range []float64{decode, lin, xfer} {
		if v > max {
			max = v
		}
	}
	return max
}

// EpochStallUs returns the cost of one epoch boundary: the iterator
// restart, the shuffle-buffer refill from storage, and the refill of the
// drained prefetch buffer (PrefetchDepth batches at steady-state latency)
// before the TPU sees data again.
func (h *Host) EpochStallUs() float64 {
	in := h.input
	refillRecords := int64(h.params.ShuffleBuffer)
	if refillRecords > in.Records {
		refillRecords = in.Records
	}
	refillBytes := float64(refillRecords * in.RecordBytes)
	return h.spec.EpochRestartUs +
		refillBytes/(h.spec.ReadMBps*float64(h.params.ReaderThreads)) +
		float64(h.params.PrefetchDepth)*h.SteadyStateBatchUs()
}

// parallelDecodeUs returns the thread-divided portion of the decode stage
// for one batch under the current parameters.
func (h *Host) parallelDecodeUs() float64 {
	in := h.input
	work := float64(in.BatchRawBytes())/h.spec.DecodeMBpsPerThread +
		float64(in.BatchSize)*(h.spec.PerRecordOverheadUs+in.ExtraDecodeUsPerRecord)
	return work / float64(h.params.DecodeThreads)
}
