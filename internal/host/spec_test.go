package host

import (
	"errors"
	"math"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	mutate := func(f func(*Spec)) Spec {
		s := DefaultSpec()
		f(&s)
		return s
	}
	cases := []struct {
		name    string
		spec    Spec
		wantErr bool
	}{
		{"default", DefaultSpec(), false},
		{"zero-cores", mutate(func(s *Spec) { s.Cores = 0 }), true},
		{"negative-cores", mutate(func(s *Spec) { s.Cores = -4 }), true},
		{"zero-read", mutate(func(s *Spec) { s.ReadMBps = 0 }), true},
		{"negative-read", mutate(func(s *Spec) { s.ReadMBps = -1 }), true},
		{"zero-decode", mutate(func(s *Spec) { s.DecodeMBpsPerThread = 0 }), true},
		{"zero-mem", mutate(func(s *Spec) { s.MemGBps = 0 }), true},
		{"zero-pcie", mutate(func(s *Spec) { s.PCIeGBps = 0 }), true},
		{"nan-pcie", mutate(func(s *Spec) { s.PCIeGBps = math.NaN() }), true},
		{"negative-record-overhead", mutate(func(s *Spec) { s.PerRecordOverheadUs = -1 }), true},
		{"negative-lock", mutate(func(s *Spec) { s.TransferLockUs = -1 }), true},
		{"negative-epoch-restart", mutate(func(s *Spec) { s.EpochRestartUs = -1 }), true},
		{"zero-overheads-ok", mutate(func(s *Spec) {
			s.PerRecordOverheadUs, s.TransferLockUs, s.EpochRestartUs = 0, 0, 0
		}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr {
				if !errors.Is(err, ErrBadSpec) {
					t.Fatalf("Validate() = %v, want ErrBadSpec", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Validate() unexpected error: %v", err)
			}
		})
	}
}

// New must refuse a nonsense host spec rather than simulating with it.
func TestNewRejectsBadSpec(t *testing.T) {
	bad := DefaultSpec()
	bad.PCIeGBps = 0
	in := InputSpec{Name: "x", BatchSize: 8, RecordBytes: 100, DecodedBytes: 200, Records: 1000}
	if _, err := New(bad, DefaultParams(), in, 1); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("New with zero PCIe bandwidth: err = %v, want ErrBadSpec", err)
	}
}
