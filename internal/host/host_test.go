package host

import (
	"strings"
	"testing"

	"repro/internal/simclock"
	"repro/internal/trace"
)

func imageInput() InputSpec {
	return InputSpec{
		Name:          "imagenet-like",
		BatchSize:     64,
		RecordBytes:   110 << 10,
		DecodedBytes:  600 << 10,
		Records:       10000,
		ImagePipeline: true,
	}
}

func nlpInput() InputSpec {
	return InputSpec{
		Name:          "squad-like",
		BatchSize:     32,
		RecordBytes:   4 << 10,
		DecodedBytes:  2 << 10,
		Records:       88000,
		ImagePipeline: false,
	}
}

func newHost(t testing.TB, p Params, in InputSpec) *Host {
	t.Helper()
	h, err := New(DefaultSpec(), p, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewRejectsBadParams(t *testing.T) {
	bad := DefaultParams()
	bad.DecodeThreads = 0
	if _, err := New(DefaultSpec(), bad, imageInput(), 1); err == nil {
		t.Fatal("zero decode threads accepted")
	}
	if _, err := New(DefaultSpec(), DefaultParams(), InputSpec{}, 1); err == nil {
		t.Fatal("empty input spec accepted")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := NaiveParams().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Params){
		func(p *Params) { p.ReaderThreads = 0 },
		func(p *Params) { p.PrefetchDepth = 0 },
		func(p *Params) { p.ShuffleBuffer = 0 },
		func(p *Params) { p.InfeedThreads = -1 },
	} {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("invalid params accepted: %+v", p)
		}
	}
}

func TestParamsClamp(t *testing.T) {
	p := Params{ReaderThreads: 1000, DecodeThreads: -5, PrefetchDepth: 9999, InfeedThreads: 100, ShuffleBuffer: 0}
	c := p.Clamp(DefaultSpec())
	if err := c.Validate(); err != nil {
		t.Fatalf("clamped params invalid: %v (%+v)", err, c)
	}
	if c.ReaderThreads > 32 || c.DecodeThreads < 1 || c.PrefetchDepth > 64 || c.InfeedThreads > 8 {
		t.Fatalf("clamp out of bounds: %+v", c)
	}
}

func TestProduceBatchEmitsPipelineOps(t *testing.T) {
	h := newHost(t, DefaultParams(), imageInput())
	ready := h.ProduceBatch(0, 0, 0)
	if ready <= 0 {
		t.Fatal("batch never ready")
	}
	names := map[string]bool{}
	for _, e := range h.Events() {
		names[e.Name] = true
		if e.Device != trace.Host {
			t.Fatalf("host op %q on %v", e.Name, e.Device)
		}
	}
	for _, want := range []string{"DecodeAndCropJpeg", "ResizeBicubic", "LinearizeX32", "TransferBufferToInfeedLocked", "InfeedEnqueueTuple"} {
		if !names[want] {
			t.Fatalf("missing host op %q; have %v", want, names)
		}
	}
	if names["BuildPaddedOutput"] {
		t.Fatal("NLP op emitted for image pipeline")
	}
}

func TestNLPPipelineOps(t *testing.T) {
	h := newHost(t, DefaultParams(), nlpInput())
	h.ProduceBatch(0, 0, 0)
	names := map[string]bool{}
	for _, e := range h.Events() {
		names[e.Name] = true
	}
	if !names["BuildPaddedOutput"] {
		t.Fatal("missing BuildPaddedOutput")
	}
	if names["DecodeAndCropJpeg"] {
		t.Fatal("image op emitted for NLP pipeline")
	}
}

func TestMoreThreadsHigherThroughput(t *testing.T) {
	produce := func(p Params) simclock.Time {
		h := newHost(t, p, imageInput())
		var last simclock.Time
		for i := int64(0); i < 20; i++ {
			last = h.ProduceBatch(i, 0, 0)
		}
		return last
	}
	naive := produce(NaiveParams())
	tuned := produce(DefaultParams())
	if tuned >= naive {
		t.Fatalf("tuned pipeline not faster: %d vs %d", tuned, naive)
	}
	if float64(naive)/float64(tuned) < 1.5 {
		t.Fatalf("thread scaling too weak: %.2fx", float64(naive)/float64(tuned))
	}
}

func TestGateDelaysBatch(t *testing.T) {
	h := newHost(t, DefaultParams(), nlpInput())
	r1 := h.ProduceBatch(0, 0, 0)
	gate := r1.Add(1_000_000)
	r2 := h.ProduceBatch(1, gate, 0)
	if r2 < gate {
		t.Fatalf("batch ready %d before gate %d", r2, gate)
	}
}

func TestEpochBoundaryStall(t *testing.T) {
	in := nlpInput()
	in.Records = 64 // tiny dataset: epoch boundary every 2 batches
	small := newHost(t, DefaultParams(), in)
	in2 := nlpInput() // large dataset: boundary only at start
	big := newHost(t, DefaultParams(), in2)
	var smallLast, bigLast simclock.Time
	for i := int64(0); i < 50; i++ {
		smallLast = small.ProduceBatch(i, 0, 0)
		bigLast = big.ProduceBatch(i, 0, 0)
	}
	if smallLast <= bigLast {
		t.Fatalf("small dataset not slower: %d vs %d", smallLast, bigLast)
	}
}

func TestDequeueOutfeedCoversWait(t *testing.T) {
	h := newHost(t, DefaultParams(), nlpInput())
	end := h.DequeueOutfeed(3, 100, 50_000, 1<<20)
	if end < 50_000 {
		t.Fatalf("dequeue finished at %d before data ready", end)
	}
	var op trace.Event
	for _, e := range h.Events() {
		if e.Name == "OutfeedDequeueTuple" {
			op = e
		}
	}
	if op.Name == "" {
		t.Fatal("no OutfeedDequeueTuple emitted")
	}
	// The op's duration covers the wait (from ~100 to past 50000).
	if op.Dur < 49_000 {
		t.Fatalf("dequeue duration %v does not include the wait", op.Dur)
	}
}

func TestStepBookkeepingOps(t *testing.T) {
	h := newHost(t, DefaultParams(), nlpInput())
	h.StepBookkeeping(1, 0)
	var names []string
	for _, e := range h.Events() {
		names = append(names, e.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"RunGraph", "Send", "Recv"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("bookkeeping missing %q: %v", want, names)
		}
	}
}

func TestStepNoiseProbability(t *testing.T) {
	h := newHost(t, DefaultParams(), nlpInput())
	for i := int64(0); i < 1000; i++ {
		h.StepNoise(i, simclock.Time(i*100), 0.1)
	}
	n := len(h.Events())
	// 24 optional ops at p=0.1 over 1000 steps ≈ 2400 events.
	if n < 2000 || n > 2900 {
		t.Fatalf("noise ops with p=0.1 over 1000 steps = %d", n)
	}
	h2 := newHost(t, DefaultParams(), nlpInput())
	for i := int64(0); i < 100; i++ {
		h2.StepNoise(i, 0, 0)
	}
	if len(h2.Events()) != 0 {
		t.Fatal("p=0 emitted noise ops")
	}
}

func TestEmitSummaryAndCheckpoint(t *testing.T) {
	h := newHost(t, DefaultParams(), nlpInput())
	end := h.EmitSummary(5, 100)
	if end <= 100 {
		t.Fatal("summary took no time")
	}
	end2 := h.EmitCheckpoint(5, end, 100<<20)
	if end2 <= end {
		t.Fatal("checkpoint took no time")
	}
	names := map[string]bool{}
	for _, e := range h.Events() {
		names[e.Name] = true
	}
	for _, want := range []string{"ScalarSummary", "MergeSummary", "SaveV2", "MergeV2Checkpoints"} {
		if !names[want] {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestEmitInitAndShutdown(t *testing.T) {
	h := newHost(t, DefaultParams(), nlpInput())
	end := h.EmitInit(0, 500<<20)
	if end <= 0 {
		t.Fatal("init took no time")
	}
	end2 := h.EmitShutdown(99, end)
	if end2 <= end {
		t.Fatal("shutdown took no time")
	}
	names := map[string]bool{}
	for _, e := range h.Events() {
		names[e.Name] = true
		if e.Name == "DisconnectHostFromDistributedTPUSystem" {
			if e.Step != 99 {
				t.Fatalf("shutdown op attributed to step %d, want 99", e.Step)
			}
		} else if e.Step != -1 {
			t.Fatalf("init op %q attributed to step %d", e.Name, e.Step)
		}
	}
	for _, want := range []string{"InitializeHostForDistributedTpu", "StartProgram", "RestoreV2", "DisconnectHostFromDistributedTPUSystem"} {
		if !names[want] {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestEmitInitWithoutRestore(t *testing.T) {
	h := newHost(t, DefaultParams(), nlpInput())
	h.EmitInit(0, 0)
	for _, e := range h.Events() {
		if e.Name == "RestoreV2" {
			t.Fatal("RestoreV2 emitted with no checkpoint")
		}
	}
}

func TestSetParamsMidRun(t *testing.T) {
	h := newHost(t, NaiveParams(), imageInput())
	for i := int64(0); i < 5; i++ {
		h.ProduceBatch(i, 0, 0)
	}
	before := h.SteadyStateBatchUs()
	if err := h.SetParams(DefaultParams()); err != nil {
		t.Fatal(err)
	}
	after := h.SteadyStateBatchUs()
	if after >= before {
		t.Fatalf("retune did not improve steady state: %g vs %g", after, before)
	}
	if err := h.SetParams(Params{}); err == nil {
		t.Fatal("invalid params accepted by SetParams")
	}
	// Pipeline still works after retune.
	if r := h.ProduceBatch(5, 0, 0); r <= 0 {
		t.Fatal("pipeline dead after SetParams")
	}
}

func TestSteadyStateMatchesSimulatedThroughput(t *testing.T) {
	// The analytic steady-state bound should approximate the simulated
	// inter-batch interval once the pipeline warms up.
	h := newHost(t, DefaultParams(), imageInput())
	var prev, last simclock.Time
	n := 60
	for i := 0; i < n; i++ {
		prev = last
		last = h.ProduceBatch(int64(i), 0, 0)
	}
	got := float64(last.Sub(prev))
	want := h.SteadyStateBatchUs()
	ratio := got / want
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("steady-state estimate %g vs simulated interval %g (ratio %g)", want, got, ratio)
	}
}

func TestDeterministicEvents(t *testing.T) {
	run := func() []trace.Event {
		h := newHost(t, DefaultParams(), imageInput())
		for i := int64(0); i < 10; i++ {
			h.ProduceBatch(i, 0, 0)
		}
		return h.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func BenchmarkProduceBatch(b *testing.B) {
	h, err := New(DefaultSpec(), DefaultParams(), imageInput(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ProduceBatch(int64(i), 0, 0)
	}
}
