package cliflag

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestEndpoints(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		bad  bool
	}{
		{in: "", want: nil},
		{in: "  ", want: nil},
		{in: "127.0.0.1:8471", want: []string{"127.0.0.1:8471"}},
		{in: "a:1, b:2 ,c:3", want: []string{"a:1", "b:2", "c:3"}},
		{in: "a:1,,b:2", bad: true},
		{in: "no-port", bad: true},
		{in: "a:1,no-port", bad: true},
	}
	for _, c := range cases {
		got, err := Endpoints(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("Endpoints(%q) accepted, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Endpoints(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Endpoints(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMetricsSinkFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	reg := obs.NewRegistry(8)
	reg.Counter("x").Inc()
	flush, err := MetricsSink("testtool", path, reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	flush()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"x\"") {
		t.Fatalf("snapshot missing counter: %s", data)
	}
}
