// Package cliflag holds the flag-handling helpers the command-line
// tools share. tpupoint and tpuprof grew identical -metrics plumbing
// and, with replicated collection, both parse endpoint lists
// (-peers on the server, -endpoints on clients); this package is the
// single copy.
package cliflag

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/obs"
)

// Endpoints parses a comma-separated list of host:port addresses,
// preserving order (order is identity for -peers: the i-th entry is
// replica i's endpoint). Whitespace around entries is ignored; empty
// entries and malformed addresses are errors, not silently dropped —
// a replica set with a hole routes sessions into the void.
func Endpoints(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	parts := strings.Split(list, ",")
	out := make([]string, 0, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("endpoint list %q: entry %d is empty", list, i)
		}
		if _, _, err := net.SplitHostPort(p); err != nil {
			return nil, fmt.Errorf("endpoint %q: %w", p, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// MetricsSink interprets a -metrics destination for a tool. A
// parseable host:port serves live JSON snapshots over HTTP (metrics at
// /, liveness at /healthz, readiness at /readyz, fleet-wide collector
// readiness at /fleetz); anything else is a file path the returned
// flush writes the final snapshot to. tool prefixes error messages;
// health may be nil when the tool has no readiness states (an
// always-ready Health is served), and fleet may be nil when the tool
// is not a collector replica (/fleetz reports an empty fleet).
func MetricsSink(tool, dest string, reg *obs.Registry, health *obs.Health, fleet *obs.FleetView) (flush func(), err error) {
	if health == nil {
		health = obs.NewHealth()
	}
	if _, _, splitErr := net.SplitHostPort(dest); splitErr == nil {
		l, err := net.Listen("tcp", dest)
		if err != nil {
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics:     serving JSON snapshots at http://%s/ (health at /healthz, /readyz; fleet at /fleetz)\n", l.Addr())
		go http.Serve(l, obs.FleetMux(reg, health, fleet)) //nolint:errcheck // serves until process exit
		return func() {}, nil
	}
	return func() {
		f, err := os.Create(dest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing metrics: %v\n", tool, err)
			return
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing metrics: %v\n", tool, err)
		}
	}, nil
}
