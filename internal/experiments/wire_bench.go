package experiments

// The naive record encoder the wire_marshal benchmark uses as its serial
// reference: the straightforward fresh-buffers-everywhere form the trace
// package shipped before MarshalRecordAppend pooled its scratch. It is
// kept here — not in internal/trace — for the same reason DBSCANBrute
// outlived the grid index: the allocation win the pooled encoder claims
// (BENCH_archive.json's wire_marshal_alloc_reduction speedup) stays
// measured against a live baseline instead of a number in a commit
// message. Byte-identity with trace.MarshalRecord is asserted before
// every benchmark run and in experiments_test.go.

import (
	"sort"

	"repro/internal/protowire"
	"repro/internal/trace"
)

// naiveMarshalRecord encodes r exactly like trace.MarshalRecord but
// with per-call buffers: a fresh destination, a fresh staging buffer per
// step and per op, and a fresh sorted-key slice per step.
func naiveMarshalRecord(r *trace.ProfileRecord) []byte {
	var dst []byte
	dst = protowire.AppendUint64(dst, 1, uint64(r.Seq))
	dst = protowire.AppendUint64(dst, 2, uint64(r.WindowStart))
	dst = protowire.AppendUint64(dst, 3, uint64(r.WindowEnd))
	dst = protowire.AppendUint64(dst, 4, uint64(r.NumEvents))
	dst = protowire.AppendBool(dst, 5, r.Truncated)
	dst = protowire.AppendDouble(dst, 6, r.IdleFrac)
	dst = protowire.AppendDouble(dst, 7, r.MXUUtil)
	for _, s := range r.Steps {
		dst = protowire.AppendBytes(dst, 8, naiveMarshalStep(s))
	}
	if r.Gap {
		dst = protowire.AppendBool(dst, 9, true)
	}
	return dst
}

func naiveMarshalStep(s *trace.StepStat) []byte {
	var dst []byte
	dst = protowire.AppendInt64(dst, 1, s.Step)
	dst = protowire.AppendUint64(dst, 2, uint64(s.Start))
	dst = protowire.AppendUint64(dst, 3, uint64(s.End))
	dst = protowire.AppendDouble(dst, 4, s.IdleFrac)
	dst = protowire.AppendDouble(dst, 5, s.MXUUtil)
	keys := make([]trace.OpKey, 0, len(s.Ops))
	for k := range s.Ops {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Device != keys[j].Device {
			return keys[i].Device < keys[j].Device
		}
		return keys[i].Name < keys[j].Name
	})
	for _, k := range keys {
		st := s.Ops[k]
		var op []byte
		op = protowire.AppendString(op, 1, k.Name)
		op = protowire.AppendUint64(op, 2, uint64(k.Device))
		op = protowire.AppendUint64(op, 3, uint64(st.Count))
		op = protowire.AppendUint64(op, 4, uint64(st.Total))
		dst = protowire.AppendBytes(dst, 6, op)
	}
	return dst
}
