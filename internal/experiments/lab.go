// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections V-VII). Each FigNN/TableN function returns the
// structured data behind the corresponding artifact; cmd/paperbench prints
// them in the paper's row/series layout and the root bench suite runs one
// benchmark per artifact.
//
// A Lab caches full profiled training runs keyed by (workload, version,
// variant) so that the many figures sharing the same runs (4-11 and
// Table II all consume the base v2/v3 profiles) pay for each run once.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core/analyzer"
	"repro/internal/core/profiler"
	"repro/internal/estimator"
	"repro/internal/storage"
	"repro/internal/tpu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Variant selects a workload flavor.
type Variant string

// Workload variants used across the evaluation.
const (
	Reference Variant = "reference" // Table I defaults, tuned pipeline
	Naive     Variant = "naive"     // untuned pipeline (Section VII-C)
	Small     Variant = "small"     // reduced dataset (Figures 12/13)
)

// AnalyzerBudget is the clustering memory budget used throughout the
// evaluation. It is sized so that DBSCAN's quadratic working set exceeds
// it on the largest run (ResNet), reproducing the paper's note that
// "k-means and DBSCAN reach memory limitations for larger workloads".
const AnalyzerBudget = 16 << 20

// RunResult is one cached profiled training run.
type RunResult struct {
	Workload string
	Variant  Variant
	Version  tpu.Version

	Records []*trace.ProfileRecord
	Steps   []*trace.StepStat

	IdleFrac     float64
	MXUUtil      float64
	TotalSeconds float64
	Checkpoints  []analyzer.Checkpoint
}

// Lab caches runs. Safe for concurrent use.
type Lab struct {
	mu   sync.Mutex
	runs map[string]*RunResult

	// StepsOverride shortens every run (used by tests); 0 keeps each
	// workload's calibrated TrainSteps.
	StepsOverride int
}

// NewLab returns an empty lab.
func NewLab() *Lab {
	return &Lab{runs: make(map[string]*RunResult)}
}

func key(name string, variant Variant, v tpu.Version) string {
	return fmt.Sprintf("%s|%s|%s", name, variant, v)
}

// Run returns the cached profiled run, executing it on first use.
// The run is profiled the production way: a TPUPoint-Profiler goroutine
// draining the run's profile service into statistical records.
func (l *Lab) Run(name string, variant Variant, version tpu.Version) (*RunResult, error) {
	k := key(name, variant, version)
	l.mu.Lock()
	if r, ok := l.runs[k]; ok {
		l.mu.Unlock()
		return r, nil
	}
	l.mu.Unlock()

	w, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	switch variant {
	case Naive:
		w = w.Naive()
	case Small:
		if w, err = w.Small(); err != nil {
			return nil, err
		}
	}

	svc := storage.NewService()
	bucket, err := svc.CreateBucket("lab")
	if err != nil {
		return nil, err
	}
	runner, err := estimator.New(w, estimator.Options{
		Version: version,
		Steps:   l.StepsOverride,
		Bucket:  bucket,
	})
	if err != nil {
		return nil, err
	}

	p := profiler.New(&profiler.ServiceClient{Service: runner.ProfileService()}, profiler.Options{})
	if err := p.Start(false); err != nil {
		return nil, err
	}
	if err := runner.Run(); err != nil {
		return nil, err
	}
	records, err := p.Stop()
	if err != nil {
		return nil, err
	}

	var cks []analyzer.Checkpoint
	for _, ck := range runner.Checkpoints() {
		cks = append(cks, analyzer.Checkpoint{Step: ck.Step, Object: ck.Object})
	}
	res := &RunResult{
		Workload:     name,
		Variant:      variant,
		Version:      version,
		Records:      records,
		Steps:        trace.AggregateSteps(records),
		IdleFrac:     runner.IdleFraction(),
		MXUUtil:      runner.MXUUtilization(),
		TotalSeconds: runner.TotalTime().Seconds(),
		Checkpoints:  cks,
	}
	l.mu.Lock()
	l.runs[k] = res
	l.mu.Unlock()
	return res, nil
}

// AllWorkloads is the paper's workload list in Table I order.
func AllWorkloads() []string { return workloads.Names() }

// LongWorkloads are the evaluation's "twenty minutes or more" set used by
// the optimizer experiments (Figure 14).
func LongWorkloads() []string { return []string{"qanet-squad", "retinanet-coco"} }

// SmallDatasetWorkloads are Figures 12/13's subjects.
func SmallDatasetWorkloads() []string {
	return []string{"qanet-squad", "retinanet-coco", "resnet-imagenet"}
}
