package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core/analyzer"
	"repro/internal/core/cluster"
	"repro/internal/core/optimizer"
	"repro/internal/tpu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// ---------------------------------------------------------------- Table I

// Table1Row is one workload-catalog entry.
type Table1Row struct {
	Name      string
	Task      string
	Model     string
	Dataset   string
	SizeMiB   float64
	Records   int64
	BatchSize int
	Params    []string
}

// Table1 reproduces the workload breakdown table.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range AllWorkloads() {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name:      w.Name,
			Task:      w.Task,
			Model:     w.Model,
			Dataset:   w.Dataset.Name,
			SizeMiB:   float64(w.Dataset.SizeBytes) / (1 << 20),
			Records:   w.Dataset.Records,
			BatchSize: w.BatchSize,
			Params:    w.ParamsDesc,
		})
	}
	return rows, nil
}

// ------------------------------------------------------------ Figures 4-6

// Series is one named line of a figure.
type Series struct {
	Workload string
	X        []float64
	Y        []float64
	Err      string // non-empty when the algorithm failed (e.g. OOM)
}

// Fig4 regenerates the k-means elbow sweep: SSD vs k (1..15) per workload.
func Fig4(lab *Lab) ([]Series, error) {
	var out []Series
	for _, name := range AllWorkloads() {
		run, err := lab.Run(name, Reference, tpu.V2)
		if err != nil {
			return nil, err
		}
		s := Series{Workload: name}
		m, _ := cluster.Features(run.Steps)
		cluster.Standardize(m)
		m = cluster.PCA(m, cluster.MaxFeatureOps)
		ssd, err := cluster.SSDSweep(m, 15, 1, AnalyzerBudget)
		if err != nil {
			s.Err = err.Error()
		} else {
			for k, v := range ssd {
				s.X = append(s.X, float64(k+1))
				s.Y = append(s.Y, v)
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig5 regenerates the DBSCAN noise sweep: noise ratio vs min samples
// (5..180 step 25) per workload.
func Fig5(lab *Lab) ([]Series, error) {
	var out []Series
	for _, name := range AllWorkloads() {
		run, err := lab.Run(name, Reference, tpu.V2)
		if err != nil {
			return nil, err
		}
		s := Series{Workload: name}
		m, _ := cluster.Features(run.Steps)
		cluster.Standardize(m)
		m = cluster.PCA(m, cluster.MaxFeatureOps)
		grid, ratios, err := cluster.NoiseSweep(m, 180, 25, AnalyzerBudget)
		if err != nil {
			s.Err = err.Error()
		} else {
			for i := range grid {
				s.X = append(s.X, float64(grid[i]))
				s.Y = append(s.Y, ratios[i])
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig6Thresholds is the similarity grid of Figure 6.
var Fig6Thresholds = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}

// Fig6 regenerates the OLS threshold sweep: phase count vs similarity
// threshold per workload.
func Fig6(lab *Lab) ([]Series, error) {
	var out []Series
	for _, name := range AllWorkloads() {
		run, err := lab.Run(name, Reference, tpu.V2)
		if err != nil {
			return nil, err
		}
		counts := analyzer.OLSSweep(run.Steps, Fig6Thresholds)
		s := Series{Workload: name}
		for i, th := range Fig6Thresholds {
			s.X = append(s.X, th)
			s.Y = append(s.Y, float64(counts[i]))
		}
		out = append(out, s)
	}
	return out, nil
}

// --------------------------------------------------------- Figures 7, 8, 9

// CoverageRow is one workload's top-3 phase coverage decomposition.
type CoverageRow struct {
	Workload string
	// Top are the individual shares of the three longest phases (the
	// stacked colors of the paper's figures); Total is their sum.
	Top   [3]float64
	Total float64
	Err   string
}

func coverageRow(name string, phases []*analyzer.Phase) CoverageRow {
	row := CoverageRow{Workload: name}
	var total float64
	for _, p := range phases {
		total += float64(p.Total)
	}
	if total == 0 {
		return row
	}
	for i, p := range analyzer.SortByTotal(phases) {
		if i >= 3 {
			break
		}
		row.Top[i] = float64(p.Total) / total
		row.Total += row.Top[i]
	}
	return row
}

// Fig7 regenerates top-3 phase coverage under OLS at the 70% threshold.
func Fig7(lab *Lab) ([]CoverageRow, error) {
	var out []CoverageRow
	for _, name := range AllWorkloads() {
		run, err := lab.Run(name, Reference, tpu.V2)
		if err != nil {
			return nil, err
		}
		phases := analyzer.OLS(run.Steps, analyzer.DefaultThreshold)
		out = append(out, coverageRow(name, phases))
	}
	return out, nil
}

// Fig8 regenerates top-3 phase coverage under DBSCAN with min samples 30
// (noise kept as a cluster, as the paper does).
func Fig8(lab *Lab) ([]CoverageRow, error) {
	var out []CoverageRow
	for _, name := range AllWorkloads() {
		run, err := lab.Run(name, Reference, tpu.V2)
		if err != nil {
			return nil, err
		}
		m, _ := cluster.Features(run.Steps)
		cluster.Standardize(m)
		m = cluster.PCA(m, cluster.MaxFeatureOps)
		res, err := cluster.DBSCAN(m, 30, 0, AnalyzerBudget)
		if err != nil {
			out = append(out, CoverageRow{Workload: name, Err: err.Error()})
			continue
		}
		phases := phasesFromLabels(run.Steps, res.Labels)
		out = append(out, coverageRow(name, phases))
	}
	return out, nil
}

// Fig9 regenerates top-3 phase coverage under k-means with k = 5.
func Fig9(lab *Lab) ([]CoverageRow, error) {
	var out []CoverageRow
	for _, name := range AllWorkloads() {
		run, err := lab.Run(name, Reference, tpu.V2)
		if err != nil {
			return nil, err
		}
		m, _ := cluster.Features(run.Steps)
		cluster.Standardize(m)
		m = cluster.PCA(m, cluster.MaxFeatureOps)
		res, err := cluster.KMeans(m, 5, 1, AnalyzerBudget)
		if err != nil {
			out = append(out, CoverageRow{Workload: name, Err: err.Error()})
			continue
		}
		phases := phasesFromLabels(run.Steps, res.Assignment)
		out = append(out, coverageRow(name, phases))
	}
	return out, nil
}

// phasesFromLabels mirrors the analyzer's cluster→phase construction for
// direct clustering results.
func phasesFromLabels(steps []*trace.StepStat, labels []int) []*analyzer.Phase {
	byLabel := map[int][]*trace.StepStat{}
	var order []int
	for i, s := range steps {
		l := labels[i]
		if _, ok := byLabel[l]; !ok {
			order = append(order, l)
		}
		byLabel[l] = append(byLabel[l], s)
	}
	var out []*analyzer.Phase
	for id, l := range order {
		p := &analyzer.Phase{ID: id}
		for _, s := range byLabel[l] {
			// Reuse OLS's accumulation by building tiny single-step
			// phases and merging; simpler to recompute inline.
			if len(p.Steps) == 0 || s.Start < p.Start {
				p.Start = s.Start
			}
			if s.End > p.End {
				p.End = s.End
			}
			p.Total += s.End.Sub(s.Start)
			p.Steps = append(p.Steps, s)
		}
		out = append(out, p)
	}
	return out
}

// --------------------------------------------------------- Figures 10-13

// UtilRow is one workload's idle/MXU pair for both generations.
type UtilRow struct {
	Workload string
	IdleV2   float64
	IdleV3   float64
	MXUV2    float64
	MXUV3    float64
}

func utilRows(lab *Lab, names []string, variant Variant) ([]UtilRow, error) {
	var out []UtilRow
	for _, name := range names {
		r2, err := lab.Run(name, variant, tpu.V2)
		if err != nil {
			return nil, err
		}
		r3, err := lab.Run(name, variant, tpu.V3)
		if err != nil {
			return nil, err
		}
		out = append(out, UtilRow{
			Workload: name,
			IdleV2:   r2.IdleFrac, IdleV3: r3.IdleFrac,
			MXUV2: r2.MXUUtil, MXUV3: r3.MXUUtil,
		})
	}
	return out, nil
}

// Fig10 regenerates TPU idle time per workload for TPUv2 and TPUv3.
func Fig10(lab *Lab) ([]UtilRow, error) {
	return utilRows(lab, AllWorkloads(), Reference)
}

// Fig11 regenerates MXU utilization per workload for TPUv2 and TPUv3.
// (Same runs as Fig10; the split mirrors the paper's two figures.)
func Fig11(lab *Lab) ([]UtilRow, error) {
	return utilRows(lab, AllWorkloads(), Reference)
}

// Fig12 regenerates idle time for the reduced-dataset variants.
func Fig12(lab *Lab) ([]UtilRow, error) {
	return utilRows(lab, SmallDatasetWorkloads(), Small)
}

// Fig13 regenerates MXU utilization for the reduced-dataset variants.
func Fig13(lab *Lab) ([]UtilRow, error) {
	return utilRows(lab, SmallDatasetWorkloads(), Small)
}

// ---------------------------------------------------------------- Table II

// Table2Cell is one (workload, algorithm) column: the top-5 operators of
// the most time-consuming phase per device.
type Table2Cell struct {
	Workload  string
	Algorithm analyzer.Algorithm
	HostOps   []string
	TPUOps    []string
	Err       string // "memory budget exceeded" for the paper's OOM cells
}

// Table2Algorithms mirrors the paper's column order.
var Table2Algorithms = []analyzer.Algorithm{analyzer.KMeansAlgo, analyzer.DBSCANAlgo, analyzer.OLSAlgo}

// Table2 regenerates the top-operator table for one generation, plus
// per-op appearance totals across all cells (the paper's Total columns).
func Table2(lab *Lab, version tpu.Version) ([]Table2Cell, map[string]int, error) {
	var cells []Table2Cell
	totals := make(map[string]int)
	for _, name := range AllWorkloads() {
		run, err := lab.Run(name, Reference, version)
		if err != nil {
			return nil, nil, err
		}
		for _, algo := range Table2Algorithms {
			cell := Table2Cell{Workload: name, Algorithm: algo}
			rep, err := analyzer.AnalyzeSteps(name, run.Steps, algo,
				analyzer.Options{Seed: 1, MemoryBudget: AnalyzerBudget})
			if err != nil {
				if errors.Is(err, cluster.ErrMemoryBudget) {
					cell.Err = "memory budget exceeded"
					cells = append(cells, cell)
					continue
				}
				return nil, nil, err
			}
			for _, op := range rep.TopHostOps {
				cell.HostOps = append(cell.HostOps, op.Name)
				totals["host:"+op.Name]++
			}
			for _, op := range rep.TopTPUOps {
				cell.TPUOps = append(cell.TPUOps, op.Name)
				totals["tpu:"+op.Name]++
			}
			cells = append(cells, cell)
		}
	}
	return cells, totals, nil
}

// --------------------------------------------------------- Figures 14-16

// Fig14Row is one optimizer speedup measurement.
type Fig14Row struct {
	Workload         string
	MeasuredSpeedup  float64
	ProjectedSpeedup float64
}

// Fig14 regenerates the optimizer speedups on TPUv2 for the long-running
// workloads (the paper's "twenty minutes or more" criterion).
func Fig14(stepsOverride int) ([]Fig14Row, error) {
	var out []Fig14Row
	for _, name := range LongWorkloads() {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		res, err := optimizer.Optimize(w, optimizer.Options{Version: tpu.V2, Steps: stepsOverride})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig14Row{
			Workload:         name,
			MeasuredSpeedup:  res.MeasuredSpeedup,
			ProjectedSpeedup: res.ProjectedSpeedup,
		})
	}
	return out, nil
}

// OptRow is one naive workload's before/after utilization for Figures
// 15 and 16.
type OptRow struct {
	Workload string
	Version  tpu.Version

	IdleBefore, IdleAfter float64
	MXUBefore, MXUAfter   float64
	Speedup               float64
}

// Fig15and16 regenerates the naive-implementation idle (Fig 15) and MXU
// utilization (Fig 16) with and without TPUPoint-Optimizer, per
// generation.
func Fig15and16(stepsOverride int) ([]OptRow, error) {
	var out []OptRow
	for _, name := range LongWorkloads() {
		for _, v := range []tpu.Version{tpu.V2, tpu.V3} {
			w, err := workloads.Get(name)
			if err != nil {
				return nil, err
			}
			res, err := optimizer.Optimize(w.Naive(), optimizer.Options{Version: v, Steps: stepsOverride})
			if err != nil {
				return nil, err
			}
			out = append(out, OptRow{
				Workload:   name,
				Version:    v,
				IdleBefore: res.BaselineIdle, IdleAfter: res.OptimizedIdle,
				MXUBefore: res.BaselineMXU, MXUAfter: res.OptimizedMXU,
				Speedup: res.MeasuredSpeedup,
			})
		}
	}
	return out, nil
}

// FormatPct renders a fraction as a percent string for report printing.
func FormatPct(f float64) string { return fmt.Sprintf("%5.1f%%", 100*f) }
