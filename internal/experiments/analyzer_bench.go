package experiments

// The analyzer benchmark harness behind `paperbench -analyzer-bench` and
// `scripts/benchdiff.sh`: it times the phase-detection kernels (k-means,
// DBSCAN, PCA) serial vs parallel on synthetic step-feature matrices and
// emits the machine-readable BENCH_analyzer.json that CI tracks across
// PRs. The legacy O(n²) DBSCAN is timed alongside the grid-indexed path
// so the speedup the optimization claims stays measured, not asserted.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core/cluster"
	"repro/internal/prng"
)

// AnalyzerBenchSizes is the default row-count sweep: the step counts the
// acceptance benchmarks track across PRs.
var AnalyzerBenchSizes = []int{1_000, 10_000, 100_000}

// bruteQuickCap bounds the O(n²) legacy DBSCAN in quick (CI smoke) mode;
// above it a single iteration costs tens of seconds.
const bruteQuickCap = 10_000

// AnalyzerBenchEntry is one timed kernel configuration.
type AnalyzerBenchEntry struct {
	Kernel      string  `json:"kernel"` // kmeans | dbscan | dbscan_brute | pca | archive_* | wire_*
	Mode        string  `json:"mode"`   // serial | parallel | pooled
	N           int     `json:"n"`      // rows (steps) clustered, or records coded
	Workers     int     `json:"workers"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// AllocsPerOp is the heap-allocation count per operation (Mallocs
	// delta across the run / iterations). Only the codec kernels report
	// it; zero means "not measured" and is omitted from the JSON.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// AnalyzerBenchReport is the BENCH_analyzer.json document (and, with the
// clustering-only fields omitted, the BENCH_archive.json document).
type AnalyzerBenchReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// Dims, K and MinPts describe the clustering geometry; codec reports
	// (archive/wire kernels) have no clustering and omit them.
	Dims    int                  `json:"dims,omitempty"`
	K       int                  `json:"kmeans_k,omitempty"`
	MinPts  int                  `json:"dbscan_min_pts,omitempty"`
	Quick   bool                 `json:"quick"`
	Entries []AnalyzerBenchEntry `json:"entries"`
	// Speedups derives the headline ratios, keyed
	// "<kernel>_parallel_vs_serial_n<N>" and
	// "dbscan_grid_parallel_vs_brute_n<N>".
	Speedups map[string]float64 `json:"speedups"`
}

// RunAnalyzerBench times the clustering kernels at the given sizes.
// workers bounds the parallel runs (0 = GOMAXPROCS); quick shortens the
// measurement window and skips the legacy quadratic DBSCAN above
// bruteQuickCap rows, which is what CI's smoke run wants.
func RunAnalyzerBench(sizes []int, workers int, quick bool) (*AnalyzerBenchReport, error) {
	if len(sizes) == 0 {
		sizes = AnalyzerBenchSizes
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const (
		dims   = 8
		k      = 5
		minPts = 8
	)
	minTime := 500 * time.Millisecond
	if quick {
		minTime = 100 * time.Millisecond
	}
	rep := &AnalyzerBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dims:       dims, K: k, MinPts: minPts,
		Quick:    quick,
		Speedups: map[string]float64{},
	}

	for _, n := range sizes {
		m := benchBlobs(n, dims, uint64(n))
		cluster.StandardizeP(m, workers)

		// One untimed DBSCAN picks eps so the timed runs measure
		// clustering, not the eps heuristic, and all variants share the
		// exact same radius.
		probe, err := cluster.DBSCANP(m, minPts, 0, 0, workers)
		if err != nil {
			return nil, fmt.Errorf("analyzer-bench: eps probe n=%d: %w", n, err)
		}
		eps := probe.Eps

		type kernelRun struct {
			kernel  string
			mode    string
			workers int
			skip    bool
			iters   int // 0 = adaptive
			fn      func() error
		}
		runs := []kernelRun{
			{kernel: "kmeans", mode: "serial", workers: 1, fn: func() error {
				_, err := cluster.KMeansP(m, k, 42, 0, 1)
				return err
			}},
			{kernel: "kmeans", mode: "parallel", workers: workers, fn: func() error {
				_, err := cluster.KMeansP(m, k, 42, 0, workers)
				return err
			}},
			{kernel: "pca", mode: "serial", workers: 1, fn: func() error {
				cluster.PCAP(m, 3, 1)
				return nil
			}},
			{kernel: "pca", mode: "parallel", workers: workers, fn: func() error {
				cluster.PCAP(m, 3, workers)
				return nil
			}},
			{kernel: "dbscan", mode: "serial", workers: 1, fn: func() error {
				_, err := cluster.DBSCANP(m, minPts, eps, 0, 1)
				return err
			}},
			{kernel: "dbscan", mode: "parallel", workers: workers, fn: func() error {
				_, err := cluster.DBSCANP(m, minPts, eps, 0, workers)
				return err
			}},
			{kernel: "dbscan_brute", mode: "serial", workers: 1,
				skip:  quick && n > bruteQuickCap,
				iters: bruteIters(n),
				fn: func() error {
					_, err := cluster.DBSCANBrute(m, minPts, eps, 0)
					return err
				}},
		}
		for _, r := range runs {
			if r.skip {
				continue
			}
			iters, nsPerOp, err := measure(minTime, r.iters, r.fn)
			if err != nil {
				return nil, fmt.Errorf("analyzer-bench: %s/%s n=%d: %w", r.kernel, r.mode, n, err)
			}
			rep.Entries = append(rep.Entries, AnalyzerBenchEntry{
				Kernel: r.kernel, Mode: r.mode, N: n, Workers: r.workers,
				Iters: iters, NsPerOp: nsPerOp,
				StepsPerSec: float64(n) * 1e9 / nsPerOp,
			})
		}
		rep.deriveSpeedups(n)
	}
	return rep, nil
}

// bruteIters caps the quadratic reference at one iteration for the sizes
// where a single pass already takes seconds.
func bruteIters(n int) int {
	if n > 10_000 {
		return 1
	}
	return 0
}

func (r *AnalyzerBenchReport) find(kernel, mode string, n int) *AnalyzerBenchEntry {
	for i := range r.Entries {
		e := &r.Entries[i]
		if e.Kernel == kernel && e.Mode == mode && e.N == n {
			return e
		}
	}
	return nil
}

func (r *AnalyzerBenchReport) deriveSpeedups(n int) {
	for _, kernel := range []string{"kmeans", "pca", "dbscan"} {
		s := r.find(kernel, "serial", n)
		p := r.find(kernel, "parallel", n)
		if s != nil && p != nil && p.NsPerOp > 0 {
			r.Speedups[fmt.Sprintf("%s_parallel_vs_serial_n%d", kernel, n)] = s.NsPerOp / p.NsPerOp
		}
	}
	brute := r.find("dbscan_brute", "serial", n)
	grid := r.find("dbscan", "parallel", n)
	if brute != nil && grid != nil && grid.NsPerOp > 0 {
		r.Speedups[fmt.Sprintf("dbscan_grid_parallel_vs_brute_n%d", n)] = brute.NsPerOp / grid.NsPerOp
	}
}

// measure times fn adaptively: at least one run, then until minTime of
// cumulative work (or fixedIters runs when fixedIters > 0).
func measure(minTime time.Duration, fixedIters int, fn func() error) (int, float64, error) {
	iters := 0
	var total time.Duration
	for {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, 0, err
		}
		total += time.Since(start)
		iters++
		if fixedIters > 0 {
			if iters >= fixedIters {
				break
			}
			continue
		}
		if total >= minTime {
			break
		}
	}
	return iters, float64(total.Nanoseconds()) / float64(iters), nil
}

// measureAllocs is measure plus a heap-allocation count per iteration
// (global Mallocs delta, so allocations made by worker goroutines the
// kernel fans out to are honestly included). The MemStats reads sit
// outside the timed window, so ns/op is comparable with measure's.
func measureAllocs(minTime time.Duration, fixedIters int, fn func() error) (int, float64, float64, error) {
	var ms runtime.MemStats
	iters := 0
	var total time.Duration
	var mallocs uint64
	for {
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		start := time.Now()
		if err := fn(); err != nil {
			return 0, 0, 0, err
		}
		total += time.Since(start)
		runtime.ReadMemStats(&ms)
		mallocs += ms.Mallocs - before
		iters++
		if fixedIters > 0 {
			if iters >= fixedIters {
				break
			}
			continue
		}
		if total >= minTime {
			break
		}
	}
	return iters, float64(total.Nanoseconds()) / float64(iters),
		float64(mallocs) / float64(iters), nil
}

// benchBlobs builds an n×dims matrix of three Gaussian blobs with low
// intrinsic dimensionality: full-scale noise on the leading three
// coordinates and near-degenerate noise on the rest. That mirrors what
// the analyzer actually clusters — PCA-projected step features, where
// the variance concentrates in the leading components — and it is the
// regime the spatial grid index targets. (With isotropic noise in all
// dims the eps ball's bounding cube covers most of a blob and no exact
// index can prune.)
func benchBlobs(n, dims int, seed uint64) *cluster.Matrix {
	rng := prng.New(seed)
	m := cluster.NewMatrix(n, dims)
	centers := [3]float64{0, 20, -20}
	for i := 0; i < n; i++ {
		c := centers[i%3]
		row := m.Row(i)
		for j := range row {
			sigma := 1.0
			if j >= maxBenchIntrinsicDims {
				sigma = 0.05
			}
			row[j] = c + rng.Normal(0, sigma)
			c = -c
		}
	}
	return m
}

// maxBenchIntrinsicDims is how many leading columns of the synthetic
// step-feature matrix carry full-scale within-phase noise.
const maxBenchIntrinsicDims = 3

// AnalyzerBenchMatrix builds the standardized synthetic step-feature
// matrix the analyzer benchmarks cluster — exported so bench_test.go
// times the kernels on exactly the geometry BENCH_analyzer.json
// reports.
func AnalyzerBenchMatrix(n int) *cluster.Matrix {
	const dims = 8
	m := benchBlobs(n, dims, uint64(n))
	cluster.StandardizeP(m, 1)
	return m
}
