package experiments

import (
	"strings"
	"testing"

	"repro/internal/tpu"
)

// shortLab shares one shortened-run lab across the test file: full-length
// runs belong to cmd/paperbench and the root bench suite.
var shortLab = func() *Lab {
	l := NewLab()
	l.StepsOverride = 220
	return l
}()

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if len(r.Params) == 0 || r.SizeMiB <= 0 || r.Records <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	if r := byName["resnet-imagenet"]; r.Model != "ResNet-50" || r.BatchSize != 1024 {
		t.Fatalf("resnet row %+v", r)
	}
	if r := byName["bert-squad"]; r.SizeMiB < 420 || r.SizeMiB > 425 {
		t.Fatalf("squad size %.2f, want ~422.27", r.SizeMiB)
	}
}

func TestLabCachesRuns(t *testing.T) {
	r1, err := shortLab.Run("dcgan-mnist", Reference, tpu.V2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := shortLab.Run("dcgan-mnist", Reference, tpu.V2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("lab did not cache the run")
	}
	if len(r1.Records) == 0 || len(r1.Steps) == 0 {
		t.Fatal("run has no profile data")
	}
	if len(r1.Checkpoints) == 0 {
		t.Fatal("run has no checkpoints")
	}
}

func TestFig4SSDFalls(t *testing.T) {
	series, err := Fig4(shortLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 9 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.Err != "" {
			t.Fatalf("%s failed: %s", s.Workload, s.Err)
		}
		if len(s.Y) != 15 {
			t.Fatalf("%s sweep has %d points", s.Workload, len(s.Y))
		}
		if s.Y[14] >= s.Y[0] {
			t.Errorf("%s SSD did not fall: %.1f -> %.1f", s.Workload, s.Y[0], s.Y[14])
		}
	}
}

func TestFig5NoiseRises(t *testing.T) {
	series, err := Fig5(shortLab)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.Err != "" {
			continue // the budget failure is legitimate for big runs
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last < first {
			t.Errorf("%s noise ratio fell: %v", s.Workload, s.Y)
		}
	}
}

func TestFig6Observation1(t *testing.T) {
	series, err := Fig6(shortLab)
	if err != nil {
		t.Fatal(err)
	}
	at70 := indexOf(Fig6Thresholds, 0.7)
	at100 := indexOf(Fig6Thresholds, 1.0)
	condensed := 0
	for _, s := range series {
		if s.Y[at70] <= 8 {
			condensed++
		}
		if s.Y[at100] < 4*s.Y[at70] {
			t.Errorf("%s: no blow-up at 100%%: %v", s.Workload, s.Y)
		}
	}
	// Observation 1: most workloads summarize into few phases at 70%.
	if condensed < 7 {
		t.Fatalf("only %d of 9 workloads condensed at 70%%", condensed)
	}
}

func TestFig7Observation2(t *testing.T) {
	rows, err := Fig7(shortLab)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Observation 2 / Figure 7: top-3 phases cover >= 95%.
		if r.Total < 0.95 {
			t.Errorf("%s OLS top-3 coverage %.3f < 0.95", r.Workload, r.Total)
		}
	}
}

func TestFig8And9CoverageDominatedByTop3(t *testing.T) {
	for figName, fn := range map[string]func(*Lab) ([]CoverageRow, error){
		"fig8-dbscan": Fig8,
		"fig9-kmeans": Fig9,
	} {
		rows, err := fn(shortLab)
		if err != nil {
			t.Fatalf("%s: %v", figName, err)
		}
		for _, r := range rows {
			if r.Err != "" {
				continue
			}
			if r.Total < 0.75 {
				t.Errorf("%s %s top-3 coverage %.3f < 0.75", figName, r.Workload, r.Total)
			}
		}
	}
}

func TestFig10And11Observation5(t *testing.T) {
	rows, err := Fig10(shortLab)
	if err != nil {
		t.Fatal(err)
	}
	var i2, i3, m2, m3 float64
	for _, r := range rows {
		i2 += r.IdleV2
		i3 += r.IdleV3
		m2 += r.MXUV2
		m3 += r.MXUV3
		if r.IdleV3 <= r.IdleV2 {
			t.Errorf("%s: v3 idle %.3f not above v2 %.3f", r.Workload, r.IdleV3, r.IdleV2)
		}
		if r.MXUV3 >= r.MXUV2 {
			t.Errorf("%s: v3 MXU %.3f not below v2 %.3f", r.Workload, r.MXUV3, r.MXUV2)
		}
	}
	n := float64(len(rows))
	// Paper averages: idle 38.90% (v2) / 43.53% (v3); MXU 22.72% / 11.34%.
	if avg := i2 / n; avg < 0.30 || avg > 0.48 {
		t.Errorf("v2 idle average %.3f, paper 0.389", avg)
	}
	if avg := i3 / n; avg < 0.35 || avg > 0.53 {
		t.Errorf("v3 idle average %.3f, paper 0.435", avg)
	}
	if avg := m2 / n; avg < 0.15 || avg > 0.32 {
		t.Errorf("v2 MXU average %.3f, paper 0.227", avg)
	}
	if ratio := m2 / m3; ratio < 1.6 || ratio > 2.5 {
		t.Errorf("v2/v3 MXU ratio %.2f, paper ~2", ratio)
	}
}

func TestFig12And13Observation6(t *testing.T) {
	smalls, err := Fig12(shortLab)
	if err != nil {
		t.Fatal(err)
	}
	var refs []UtilRow
	for _, name := range SmallDatasetWorkloads() {
		r2, err := shortLab.Run(name, Reference, tpu.V2)
		if err != nil {
			t.Fatal(err)
		}
		r3, err := shortLab.Run(name, Reference, tpu.V3)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, UtilRow{Workload: name,
			IdleV2: r2.IdleFrac, IdleV3: r3.IdleFrac,
			MXUV2: r2.MXUUtil, MXUV3: r3.MXUUtil})
	}
	var resnetShift, otherShift float64
	for i, small := range smalls {
		ref := refs[i]
		if small.IdleV2 <= ref.IdleV2 {
			t.Errorf("%s small idle %.3f not above reference %.3f", small.Workload, small.IdleV2, ref.IdleV2)
		}
		if small.MXUV2 >= ref.MXUV2 {
			t.Errorf("%s small MXU %.3f not below reference %.3f", small.Workload, small.MXUV2, ref.MXUV2)
		}
		shift := small.IdleV2 - ref.IdleV2
		if small.Workload == "resnet-imagenet" {
			resnetShift = shift
		} else if shift > otherShift {
			otherShift = shift
		}
	}
	// "ResNet in particular experiences the greatest change."
	if resnetShift <= otherShift {
		t.Errorf("resnet shift %.3f not the largest (other max %.3f)", resnetShift, otherShift)
	}
}

func TestTable2Observation3(t *testing.T) {
	cells, totals, err := Table2(shortLab, tpu.V2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 27 {
		t.Fatalf("cells = %d, want 9 workloads x 3 algorithms", len(cells))
	}
	// The data-exchange ops dominate host columns; fusion dominates TPU.
	if totals["tpu:fusion"] < 18 {
		t.Errorf("fusion appears %d times, want near-universal", totals["tpu:fusion"])
	}
	if totals["host:OutfeedDequeueTuple"]+totals["host:TransferBufferToInfeedLocked"] < 18 {
		t.Errorf("infeed/outfeed host ops appear %d+%d times",
			totals["host:OutfeedDequeueTuple"], totals["host:TransferBufferToInfeedLocked"])
	}
	if totals["tpu:Reshape"] < 9 {
		t.Errorf("Reshape appears %d times, want common", totals["tpu:Reshape"])
	}
	// OLS never fails on memory, matching the paper's claim.
	for _, c := range cells {
		if c.Algorithm == "ols" && c.Err != "" {
			t.Errorf("OLS failed on %s: %s", c.Workload, c.Err)
		}
	}
}

func TestFig14OptimizerSpeedups(t *testing.T) {
	rows, err := Fig14(260)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper reports ~1.12x on average for the long workloads.
		if r.ProjectedSpeedup < 1.02 || r.ProjectedSpeedup > 1.35 {
			t.Errorf("%s projected speedup %.3f outside the paper's regime", r.Workload, r.ProjectedSpeedup)
		}
	}
}

func TestFig15And16NaiveOptimization(t *testing.T) {
	rows, err := Fig15and16(260)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 2 workloads x 2 versions", len(rows))
	}
	var v2Gain, v3Gain float64
	for _, r := range rows {
		if r.IdleAfter >= r.IdleBefore {
			t.Errorf("%s %v: idle rose %.3f -> %.3f", r.Workload, r.Version, r.IdleBefore, r.IdleAfter)
		}
		if r.MXUAfter <= r.MXUBefore {
			t.Errorf("%s %v: MXU fell %.3f -> %.3f", r.Workload, r.Version, r.MXUBefore, r.MXUAfter)
		}
		gain := r.MXUAfter - r.MXUBefore
		if r.Version == tpu.V2 {
			v2Gain += gain
		} else {
			v3Gain += gain
		}
	}
	// Figure 16: the MXU change is pronounced on TPUv2.
	if v2Gain <= v3Gain {
		t.Errorf("v2 MXU gain %.3f not above v3 %.3f", v2Gain, v3Gain)
	}
}

func indexOf(xs []float64, v float64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.389); !strings.Contains(got, "38.9") {
		t.Fatalf("FormatPct = %q", got)
	}
}
