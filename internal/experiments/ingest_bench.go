package experiments

// The fleet-ingest benchmark behind `paperbench -ingest-bench`: the
// scale contract for the sharded profile repository. It simulates N
// concurrent agents (N in {8, 64, 256}) each saving a burst of small
// archives into one sharded repository over the in-memory bucket,
// measuring sustained save throughput, the exact p99 append latency
// (from the full sorted latency population, not a histogram estimate),
// and how many manifest-CAS retries the shard layer absorbed. The
// zero-loss contract is asserted inline — every acked save must be
// listed and the store fsck-clean — so a regression that trades
// durability for speed fails the bench outright, not just the gate.
// It emits a BENCH_ingest.json in the same document shape as the other
// harnesses, so cmd/benchdiff gates it across PRs with
// -max-ingest-p99-regress.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/trace"
)

// IngestBenchAgents is the concurrency sweep: the paper's fleet story
// at small, medium, and acceptance scale.
var IngestBenchAgents = []int{8, 64, 256}

// ingestRunsPerAgent is each agent's save burst. It is identical in
// quick and full mode so quick-mode entries share (kernel, mode, n)
// keys with the committed baseline and benchdiff can match them.
const ingestRunsPerAgent = 4

// Replicated-mode sweep: the horizontal scale-out acceptance point.
// Full mode drives 1024 agents against 1, 2, and 4 collector replicas
// over ONE shared store; quick mode drops to 256 agents and the {1, 4}
// endpoints of the sweep. The scaling headline
// (ingest_replica_scaling_agents<N> = throughput(Rmax)/throughput(R1))
// is gated by benchdiff -min-replica-scaling on multi-core runners.
var (
	ingestReplicaSweepFull  = []int{1, 2, 4}
	ingestReplicaSweepQuick = []int{1, 4}
)

const (
	ingestReplicatedAgentsFull  = 1024
	ingestReplicatedAgentsQuick = 256
)

// RunIngestBench drives the concurrent-ingest sweep and returns the
// report. quick drops the 256-agent acceptance point for CI smoke runs
// — the remaining sweep points keep their exact configuration, so they
// stay comparable against a full baseline. With the default (nil)
// sweep it also runs the replicated modes: 1024 agents (256 quick)
// fanned over 1/2/4 replica ingest lanes sharing one store.
func RunIngestBench(agents []int, quick bool) (*AnalyzerBenchReport, error) {
	replicated := len(agents) == 0
	if len(agents) == 0 {
		agents = IngestBenchAgents
		if quick && len(agents) > 1 {
			agents = agents[:len(agents)-1]
		}
	}
	runsPer := ingestRunsPerAgent
	rep := &AnalyzerBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Speedups:   map[string]float64{},
	}
	for _, n := range agents {
		if err := runIngestCase(rep, n, runsPer); err != nil {
			return nil, err
		}
	}
	if replicated {
		repAgents, sweep := ingestReplicatedAgentsFull, ingestReplicaSweepFull
		if quick {
			repAgents, sweep = ingestReplicatedAgentsQuick, ingestReplicaSweepQuick
		}
		var base, last float64
		for _, replicas := range sweep {
			thr, err := runReplicatedIngestCase(rep, repAgents, replicas)
			if err != nil {
				return nil, err
			}
			if replicas == 1 {
				base = thr
			}
			last = thr
		}
		if base > 0 {
			rep.Speedups[fmt.Sprintf("ingest_replica_scaling_agents%d", repAgents)] = last / base
		}
	}
	return rep, nil
}

// runIngestCase is one sweep point: n agents, runsPer saves each.
func runIngestCase(rep *AnalyzerBenchReport, n, runsPer int) error {
	svc := storage.NewService()
	bucket, err := svc.CreateBucket(fmt.Sprintf("ingest-%d", n))
	if err != nil {
		return err
	}
	r, _, err := repo.OpenShards(bucket, repo.DefaultShards)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry(16)
	r.SetObs(reg)

	// Blobs are prebuilt outside the timed window — the bench measures
	// the repository's ingest path, not the archive encoder.
	total := n * runsPer
	blobs := make([][]byte, total)
	for i := range blobs {
		blobs[i] = ingestBenchBlob(fmt.Sprintf("agent-%03d-run-%02d", i/runsPer, i%runsPer), uint64(i+1))
	}

	latencies := make([]time.Duration, total)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	for a := 0; a < n; a++ {
		go func(a int) {
			defer wg.Done()
			for k := 0; k < runsPer; k++ {
				i := a*runsPer + k
				t0 := time.Now()
				_, err := r.Save(blobs[i])
				latencies[i] = time.Since(t0)
				if err != nil {
					errs[a] = err
					return
				}
			}
		}(a)
	}
	wg.Wait()
	wall := time.Since(start)
	for a, err := range errs {
		if err != nil {
			return fmt.Errorf("ingest-bench: agent %d of %d: %w", a, n, err)
		}
	}

	// Zero-loss contract: every acked save is listed and the store is
	// clean. A bench run that lost a run is a failure, not a data point.
	listed, err := r.List(repo.Filter{})
	if err != nil {
		return err
	}
	if len(listed) != total {
		return fmt.Errorf("ingest-bench: agents=%d acked %d saves but %d listed", n, total, len(listed))
	}
	frep, err := r.Fsck(false)
	if err != nil {
		return err
	}
	if !frep.Clean() {
		return fmt.Errorf("ingest-bench: agents=%d left fsck issues: %+v", n, frep.Issues)
	}

	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p99 := sorted[(len(sorted)-1)*99/100]
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	mode := fmt.Sprintf("agents%d", n)
	rep.Entries = append(rep.Entries, AnalyzerBenchEntry{
		Kernel:  "ingest_save",
		Mode:    mode,
		N:       total,
		Workers: n,
		Iters:   total,
		NsPerOp: float64(sum.Nanoseconds()) / float64(total),
		// StepsPerSec doubles as sustained saves/sec for this harness.
		StepsPerSec: float64(total) / wall.Seconds(),
	})
	rep.Speedups["ingest_p99_us_"+mode] = float64(p99.Microseconds())
	rep.Speedups["ingest_cas_retries_"+mode] = float64(reg.Counter("repo.manifest.cas.retries").Value())
	return nil
}

// runReplicatedIngestCase is one replicated sweep point: n agents each
// saving one small archive, fanned over `replicas` collector ingest
// lanes that share one store. Each lane is what a collector replica
// runs: a Repo scoped to its owned shards plus a group-commit Ingestor
// that is the sole writer of those shards, so lanes never contend on a
// manifest CAS and throughput scales with the replica count (up to the
// machine's cores). Agents route each run to its owner with the same
// placement function the fleet uses — no redirects in the hot loop,
// exactly like a placement-aware client. Returns the sustained
// saves/sec for the scaling headline.
func runReplicatedIngestCase(rep *AnalyzerBenchReport, n, replicas int) (float64, error) {
	svc := storage.NewService()
	bucket, err := svc.CreateBucket(fmt.Sprintf("ingest-rep-%d-%d", n, replicas))
	if err != nil {
		return 0, err
	}
	reg := obs.NewRegistry(16)

	lanes := make([]*repo.Ingestor, replicas)
	for id := 0; id < replicas; id++ {
		rc := &repo.ReplicaConfig{ID: id, Replicas: replicas}
		r, _, err := repo.OpenShardsOwned(bucket, repo.DefaultShards, rc.OwnedShards(repo.DefaultShards))
		if err != nil {
			return 0, err
		}
		r.SetObs(reg)
		lanes[id] = repo.NewIngestor(r, repo.IngestorOptions{Replica: rc, Obs: reg})
	}
	defer func() {
		for _, g := range lanes {
			g.Close()
		}
	}()

	place := &repo.ReplicaConfig{Replicas: replicas}
	type routed struct {
		blob []byte
		lane int
	}
	jobs := make([]routed, n)
	for i := range jobs {
		runID := fmt.Sprintf("fleet-agent-%04d", i)
		jobs[i] = routed{
			blob: ingestBenchBlob(runID, uint64(i+1)),
			lane: place.OwnerOfRun(runID, repo.DefaultShards),
		}
	}

	latencies := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			_, err := lanes[jobs[i].lane].Save(jobs[i].blob)
			latencies[i] = time.Since(t0)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("ingest-bench: replicated agents=%d replicas=%d agent %d: %w", n, replicas, i, err)
		}
	}

	// Zero-loss contract, verified through an INDEPENDENT reader over
	// the shared store: every acked save is listed and fsck is clean.
	reader, _, err := repo.OpenShards(bucket, repo.DefaultShards)
	if err != nil {
		return 0, err
	}
	listed, err := reader.List(repo.Filter{})
	if err != nil {
		return 0, err
	}
	if len(listed) != n {
		return 0, fmt.Errorf("ingest-bench: replicas=%d acked %d saves but %d listed", replicas, n, len(listed))
	}
	frep, err := reader.Fsck(false)
	if err != nil {
		return 0, err
	}
	if !frep.Clean() {
		return 0, fmt.Errorf("ingest-bench: replicas=%d left fsck issues: %+v", replicas, frep.Issues)
	}

	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p99 := sorted[(len(sorted)-1)*99/100]
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	thr := float64(n) / wall.Seconds()
	mode := fmt.Sprintf("agents%d_replicas%d", n, replicas)
	rep.Entries = append(rep.Entries, AnalyzerBenchEntry{
		Kernel:      "ingest_replicated",
		Mode:        mode,
		N:           n,
		Workers:     replicas,
		Iters:       n,
		NsPerOp:     float64(sum.Nanoseconds()) / float64(n),
		StepsPerSec: thr,
	})
	rep.Speedups["ingest_p99_us_"+mode] = float64(p99.Microseconds())
	return thr, nil
}

// ingestBenchBlob builds the small archive each simulated agent saves:
// a handful of records, no summary — the shape of a short profiling
// session, and the small-object pathology compaction exists for.
func ingestBenchBlob(runID string, seq uint64) []byte {
	w := archive.NewWriter(archive.Meta{RunID: runID, Workload: "ingest", CreatedSeq: seq})
	var ts simclock.Time
	for i := 0; i < 4; i++ {
		step := int64(i)
		events := []trace.Event{
			{Name: "InfeedDequeue", Device: trace.Host, Start: ts, Dur: 500, Step: step},
			{Name: "MatMul", Device: trace.TPU, Start: ts + 600, Dur: 300, Step: step},
		}
		w.Add(trace.Reduce(step, ts, events, 0.2, 0.4))
		ts = ts.Add(1000)
	}
	return w.Finalize(nil)
}
