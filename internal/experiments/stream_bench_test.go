package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core/analyzer"
	"repro/internal/trace"
)

func TestRunStreamBenchReportShape(t *testing.T) {
	const n = 400
	rep, err := RunStreamBench([]int{n}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct{ kernel, mode string }{
		{"batch_ols", "serial"},
		{"stream_analyze", "duty1"},
		{"stream_analyze", "duty10"},
	} {
		if rep.find(want.kernel, want.mode, n) == nil {
			t.Fatalf("report is missing %s/%s n=%d", want.kernel, want.mode, n)
		}
	}
	for _, key := range []string{
		fmt.Sprintf("stream_boundary_f1_duty1_n%d", n),
		fmt.Sprintf("stream_boundary_f1_duty10_n%d", n),
		fmt.Sprintf("stream_share_mape_duty1_n%d", n),
		fmt.Sprintf("stream_share_mape_duty10_n%d", n),
		fmt.Sprintf("stream_state_bytes_n%d", n),
	} {
		if _, ok := rep.Speedups[key]; !ok {
			t.Fatalf("report is missing score %q (have %v)", key, rep.Speedups)
		}
	}
	// The generator is clean (disjoint regime op sets), so streaming at
	// full rate must reproduce the batch report exactly and sampling at
	// 1/10 must stay inside the CI floors with margin.
	if f1 := rep.Speedups[fmt.Sprintf("stream_boundary_f1_duty1_n%d", n)]; f1 != 1 {
		t.Fatalf("full-rate boundary F1 = %g, want 1", f1)
	}
	if f1 := rep.Speedups[fmt.Sprintf("stream_boundary_f1_duty10_n%d", n)]; f1 < 0.9 {
		t.Fatalf("duty-1/10 boundary F1 = %g, below the CI floor", f1)
	}
	if mape := rep.Speedups[fmt.Sprintf("stream_share_mape_duty10_n%d", n)]; mape > 0.10 {
		t.Fatalf("duty-1/10 share MAPE = %g, above the CI ceiling", mape)
	}
}

func TestStreamBenchStateBounded(t *testing.T) {
	rep, err := RunStreamBench([]int{500, 5_000}, true)
	if err != nil {
		t.Fatal(err)
	}
	growth, ok := rep.Speedups["stream_state_growth"]
	if !ok {
		t.Fatal("report is missing stream_state_growth")
	}
	if growth > streamStateGrowthLimit {
		t.Fatalf("state growth %.2fx exceeds the %gx limit", growth, streamStateGrowthLimit)
	}
}

func TestBoundaryF1(t *testing.T) {
	cases := []struct {
		pred, ref []int64
		tol       int64
		want      float64
	}{
		{[]int64{100, 200}, []int64{100, 200}, 0, 1},
		{[]int64{105, 205}, []int64{100, 200}, 10, 1},
		{[]int64{105, 205}, []int64{100, 200}, 1, 0},
		{nil, nil, 0, 1},
		{[]int64{100}, nil, 0, 0},
		{nil, []int64{100}, 0, 0},
		// One of two matched: precision 1/2, recall 1/2 -> F1 1/2.
		{[]int64{100, 500}, []int64{100, 200}, 5, 0.5},
	}
	for i, c := range cases {
		if got := boundaryF1(c.pred, c.ref, c.tol); got != c.want {
			t.Errorf("case %d: F1 = %g, want %g", i, got, c.want)
		}
	}
}

func TestShareMAPEIdentical(t *testing.T) {
	// Streaming a run at duty 1 against its own batch phases must give
	// MAPE 0.
	recs := streamBenchRecords(400)
	s := analyzer.NewStream("t", analyzer.StreamOptions{})
	for _, r := range recs {
		if err := s.Feed(r); err != nil {
			t.Fatal(err)
		}
	}
	rep := s.Finish()
	batch := analyzer.OLS(trace.AggregateSteps(recs), analyzer.DefaultThreshold)
	if mape := shareMAPE(rep, batch); mape != 0 {
		t.Fatalf("self-MAPE = %g, want 0", mape)
	}
}
