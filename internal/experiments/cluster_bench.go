package experiments

// The fleet-scheduling benchmark behind `paperbench -cluster-bench`: the
// scale contract for the multi-tenant cluster simulation. Each sweep
// point prepares a cluster preset once (the expensive per-job isolated
// pipelines, run in parallel) and then replays the scheduling layer under
// every routing policy, measuring scheduler throughput (jobs scheduled
// per wall second) and the simulated-time fairness surface: Jain's index
// over per-tenant service and the worst tenant's p99 queueing delay.
// Simulated-time metrics are deterministic for a fixed seed, so their
// benchdiff gates can be tight; wall-clock throughput gets the usual
// loose floor. The zero-loss contract is asserted inline: every accepted
// job must produce a listed archive and the store must be fsck-clean.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/storage"
)

// ClusterBenchPresets is the sweep: the contended 8-worker scenario and
// the 64-worker / 8-tenant / 1000-job acceptance scenario.
var ClusterBenchPresets = []string{"rush", "fleet"}

// clusterBenchSeed keeps the simulated-time metrics identical across
// runs, so benchdiff compares like with like.
const clusterBenchSeed = 42

// RunClusterBench drives the preset×policy sweep and returns the report.
// quick drops the 1000-job acceptance point for CI smoke runs; the
// remaining points keep their exact configuration so they stay
// comparable against a full baseline.
func RunClusterBench(presets []string, quick bool) (*AnalyzerBenchReport, error) {
	if len(presets) == 0 {
		presets = ClusterBenchPresets
		if quick && len(presets) > 1 {
			presets = presets[:len(presets)-1]
		}
	}
	rep := &AnalyzerBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Speedups:   map[string]float64{},
	}
	for _, preset := range presets {
		if err := runClusterCase(rep, preset); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// runClusterCase is one sweep point: a preset prepared once, scheduled
// and archived under every policy.
func runClusterCase(rep *AnalyzerBenchReport, preset string) error {
	spec, err := cluster.Preset(preset, clusterBenchSeed)
	if err != nil {
		return err
	}
	prepStart := time.Now()
	c, err := cluster.New(spec)
	if err != nil {
		return fmt.Errorf("cluster-bench: preset %s: %w", preset, err)
	}
	prep := time.Since(prepStart)
	jobs := len(c.Jobs())

	for _, policy := range cluster.Policies() {
		reg := obs.NewRegistry(16)
		schedStart := time.Now()
		res, err := c.Schedule(policy, reg)
		if err != nil {
			return fmt.Errorf("cluster-bench: %s/%s: %w", preset, policy, err)
		}
		schedWall := time.Since(schedStart)

		svc := storage.NewService()
		bucket, err := svc.CreateBucket(fmt.Sprintf("cluster-%s-%s", preset, policy))
		if err != nil {
			return err
		}
		r := repo.New(bucket)
		saved, err := c.SaveArchives(r, res, policy)
		if err != nil {
			return err
		}

		// Zero-loss contract: accepted ⇒ archived, shed jobs accounted,
		// store clean. A bench run that lost a job is a failure, not a
		// data point.
		fr := res.Report
		if saved != fr.Accepted {
			return fmt.Errorf("cluster-bench: %s/%s: accepted %d but archived %d",
				preset, policy, fr.Accepted, saved)
		}
		if fr.Submitted != fr.Accepted+fr.Shed {
			return fmt.Errorf("cluster-bench: %s/%s: submitted %d != accepted %d + shed %d",
				preset, policy, fr.Submitted, fr.Accepted, fr.Shed)
		}
		if got := reg.Snapshot().C("cluster.jobs.shed"); got != int64(fr.Shed) {
			return fmt.Errorf("cluster-bench: %s/%s: obs shed %d != report shed %d",
				preset, policy, got, fr.Shed)
		}
		listed, err := r.List(repo.Filter{})
		if err != nil {
			return err
		}
		if len(listed) != saved {
			return fmt.Errorf("cluster-bench: %s/%s: %d archived but %d listed",
				preset, policy, saved, len(listed))
		}
		frep, err := r.Fsck(false)
		if err != nil {
			return err
		}
		if !frep.Clean() {
			return fmt.Errorf("cluster-bench: %s/%s: fsck issues: %+v", preset, policy, frep.Issues)
		}

		mode := fmt.Sprintf("%s_%s", preset, policy)
		// Scheduler throughput amortizes the one-time pipeline prep over
		// the policies that reuse it.
		wall := schedWall + prep/time.Duration(len(cluster.Policies()))
		rep.Entries = append(rep.Entries, AnalyzerBenchEntry{
			Kernel:      "cluster_schedule",
			Mode:        mode,
			N:           jobs,
			Workers:     spec.Workers,
			Iters:       jobs,
			NsPerOp:     float64(schedWall.Nanoseconds()) / float64(jobs),
			StepsPerSec: float64(jobs) / wall.Seconds(), // jobs scheduled per wall second
		})
		rep.Speedups["cluster_jain_"+mode] = fr.JainIndex
		rep.Speedups["cluster_p99_wait_us_"+mode] = float64(fr.MaxWaitP99)
		rep.Speedups["cluster_shed_"+mode] = float64(fr.Shed)
		rep.Speedups["cluster_util_"+mode] = fr.MeanUtilization
	}
	return nil
}
