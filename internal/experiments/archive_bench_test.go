package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/trace"
)

// TestNaiveMarshalRecordIdentity pins the property the wire_marshal
// benchmark depends on: the naive reference encoder and the pooled
// production encoder emit identical bytes, so their ns/op and allocs/op
// are comparing the same work.
func TestNaiveMarshalRecordIdentity(t *testing.T) {
	for _, rec := range archiveBenchRecords(500) {
		if !bytes.Equal(naiveMarshalRecord(rec), trace.MarshalRecord(rec)) {
			t.Fatalf("naive encoder diverges from MarshalRecord at seq %d", rec.Seq)
		}
	}
}

// TestRunArchiveBenchReportShape runs the codec benchmark at a small
// size and checks the document carries every kernel, the codec speedup
// keys, and allocs/op on the wire kernels — the fields the benchdiff
// gates read.
func TestRunArchiveBenchReportShape(t *testing.T) {
	const n = 200
	rep, err := RunArchiveBench([]int{n}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct{ kernel, mode string }{
		{"archive_encode", "serial"},
		{"archive_encode_par", "parallel"},
		{"archive_decode", "serial"},
		{"archive_decode_par", "parallel"},
		{"wire_marshal", "serial"},
		{"wire_marshal", "pooled"},
		{"wire_unmarshal", "serial"},
		{"repo_diff", "serial"},
	} {
		if rep.find(want.kernel, want.mode, n) == nil {
			t.Fatalf("report is missing %s/%s n=%d", want.kernel, want.mode, n)
		}
	}
	for _, key := range []string{
		fmt.Sprintf("archive_encode_par_vs_serial_n%d", n),
		fmt.Sprintf("archive_decode_par_vs_serial_n%d", n),
		fmt.Sprintf("wire_marshal_pooled_vs_serial_n%d", n),
		fmt.Sprintf("wire_marshal_alloc_reduction_n%d", n),
	} {
		if _, ok := rep.Speedups[key]; !ok {
			t.Fatalf("report is missing speedup %q (have %v)", key, rep.Speedups)
		}
	}
	naive := rep.find("wire_marshal", "serial", n)
	pooled := rep.find("wire_marshal", "pooled", n)
	if naive.AllocsPerOp <= 0 {
		t.Fatal("naive wire_marshal reported no allocations")
	}
	if pooled.AllocsPerOp >= naive.AllocsPerOp {
		t.Fatalf("pooled encoder allocates as much as the naive one: %.0f vs %.0f allocs/op",
			pooled.AllocsPerOp, naive.AllocsPerOp)
	}
	red := rep.Speedups[fmt.Sprintf("wire_marshal_alloc_reduction_n%d", n)]
	if red < 0 || red > 1 {
		t.Fatalf("alloc reduction %f outside [0, 1]", red)
	}
	// Clustering-only fields stay zero on codec reports so omitempty
	// drops them from BENCH_archive.json.
	if rep.Dims != 0 || rep.K != 0 || rep.MinPts != 0 {
		t.Fatalf("codec report carries clustering fields: dims=%d k=%d minPts=%d",
			rep.Dims, rep.K, rep.MinPts)
	}
}
