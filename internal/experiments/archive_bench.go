package experiments

// The archive benchmark harness behind `paperbench -archive-bench`: it
// times the profile-archive codec (internal/archive, serial and
// parallel), the record wire codec (internal/trace, naive reference vs
// pooled append encoder, with allocs/op), and the cross-run diff engine
// (internal/repo) on synthetic record streams. It emits a
// BENCH_archive.json in the same document shape as the analyzer
// benchmark, so cmd/benchdiff tracks it across PRs (with
// -min-grid-speedup 0 — there is no grid/brute pair here — and the
// codec gates -min-decode-speedup / -min-alloc-reduction instead).

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"repro/internal/archive"
	"repro/internal/repo"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// ArchiveBenchSizes is the record-count sweep. Both sizes run in quick
// mode too (benchdiff matches entries by (kernel, mode, n)); quick only
// shortens the measurement window.
var ArchiveBenchSizes = []int{1_000, 10_000}

// archiveBenchPhases is the per-summary phase count the diff kernel
// aligns — a deliberately hard instance (every phase must be paired).
const archiveBenchPhases = 64

// RunArchiveBench times the codec pipeline end to end: archive encode
// (serial Add loop vs parallel AddBatch), archive decode (open + full
// record scan, per-segment CRC verification included; one worker vs a
// pool — bit-identical output either way), the record wire codec
// (naive per-call reference vs pooled append encoder, allocs/op
// reported for both), and the phase-alignment diff. workers bounds the
// parallel variants (0 = GOMAXPROCS); quick shortens the measurement
// window for CI smoke runs.
func RunArchiveBench(sizes []int, workers int, quick bool) (*AnalyzerBenchReport, error) {
	if len(sizes) == 0 {
		sizes = ArchiveBenchSizes
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	minTime := 500 * time.Millisecond
	if quick {
		minTime = 100 * time.Millisecond
	}
	rep := &AnalyzerBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Speedups:   map[string]float64{},
	}

	for _, n := range sizes {
		recs := archiveBenchRecords(n)
		meta := archive.Meta{RunID: fmt.Sprintf("bench-%d", n), Workload: "synthetic"}

		// The naive reference is only a reference while it encodes the
		// same bytes; assert that before timing anything against it.
		for i, r := range recs {
			if !bytes.Equal(naiveMarshalRecord(r), trace.MarshalRecord(r)) {
				return nil, fmt.Errorf("archive-bench: naive encoder diverges from MarshalRecord at record %d", i)
			}
		}

		encode := func() error {
			w := archive.NewWriter(meta)
			for _, r := range recs {
				w.Add(r)
			}
			if len(w.Finalize(nil)) == 0 {
				return fmt.Errorf("empty archive")
			}
			return nil
		}
		encodePar := func() error {
			w := archive.NewWriter(meta)
			w.SetParallelism(workers)
			if err := w.AddBatch(recs); err != nil {
				return err
			}
			if len(w.Finalize(nil)) == 0 {
				return fmt.Errorf("empty archive")
			}
			return nil
		}
		w := archive.NewWriter(meta)
		for _, r := range recs {
			w.Add(r)
		}
		blob := w.Finalize(nil)
		decodeWith := func(workers int) func() error {
			return func() error {
				a, err := archive.OpenWorkers(blob, workers)
				if err != nil {
					return err
				}
				got, err := a.RecordsWorkers(workers)
				if err != nil {
					return err
				}
				if len(got) != n {
					return fmt.Errorf("decoded %d records, want %d", len(got), n)
				}
				return nil
			}
		}
		wireSerial := func() error {
			var total int
			for _, r := range recs {
				total += len(naiveMarshalRecord(r))
			}
			if total == 0 {
				return fmt.Errorf("empty encoding")
			}
			return nil
		}
		var wireBuf []byte
		wirePooled := func() error {
			var total int
			for _, r := range recs {
				wireBuf = trace.MarshalRecordAppend(wireBuf[:0], r)
				total += len(wireBuf)
			}
			if total == 0 {
				return fmt.Errorf("empty encoding")
			}
			return nil
		}
		encoded := make([][]byte, len(recs))
		for i, r := range recs {
			encoded[i] = trace.MarshalRecord(r)
		}
		wireUnmarshal := func() error {
			for i, b := range encoded {
				r, err := trace.UnmarshalRecord(b)
				if err != nil {
					return fmt.Errorf("record %d: %w", i, err)
				}
				if r.Seq != recs[i].Seq {
					return fmt.Errorf("record %d decoded seq %d, want %d", i, r.Seq, recs[i].Seq)
				}
			}
			return nil
		}
		sa := archiveBenchSummary(archiveBenchPhases, 0)
		sb := archiveBenchSummary(archiveBenchPhases, 1)
		diff := func() error {
			d, err := repo.DiffSummaries(sa, sb)
			if err != nil {
				return err
			}
			if len(d.Matches) == 0 {
				return fmt.Errorf("no phase matches")
			}
			return nil
		}

		for _, r := range []struct {
			kernel  string
			mode    string
			workers int
			fn      func() error
		}{
			{"archive_encode", "serial", 1, encode},
			{"archive_encode_par", "parallel", workers, encodePar},
			{"archive_decode", "serial", 1, decodeWith(1)},
			{"archive_decode_par", "parallel", workers, decodeWith(workers)},
			{"wire_marshal", "serial", 1, wireSerial},
			{"wire_marshal", "pooled", 1, wirePooled},
			{"wire_unmarshal", "serial", 1, wireUnmarshal},
			{"repo_diff", "serial", 1, diff},
		} {
			iters, nsPerOp, allocsPerOp, err := measureAllocs(minTime, 0, r.fn)
			if err != nil {
				return nil, fmt.Errorf("archive-bench: %s/%s n=%d: %w", r.kernel, r.mode, n, err)
			}
			rep.Entries = append(rep.Entries, AnalyzerBenchEntry{
				Kernel: r.kernel, Mode: r.mode, N: n, Workers: r.workers,
				Iters: iters, NsPerOp: nsPerOp,
				StepsPerSec: float64(n) * 1e9 / nsPerOp,
				AllocsPerOp: allocsPerOp,
			})
		}
		rep.deriveCodecSpeedups(n)
	}
	return rep, nil
}

// deriveCodecSpeedups records the headline ratios the codec gates in
// cmd/benchdiff enforce: parallel-vs-serial archive encode/decode,
// pooled-vs-naive wire marshal time, and the fraction of marshal
// allocations the pooled encoder eliminates (0..1).
func (r *AnalyzerBenchReport) deriveCodecSpeedups(n int) {
	for _, kernel := range []string{"archive_encode", "archive_decode"} {
		s := r.find(kernel, "serial", n)
		p := r.find(kernel+"_par", "parallel", n)
		if s != nil && p != nil && p.NsPerOp > 0 {
			r.Speedups[fmt.Sprintf("%s_par_vs_serial_n%d", kernel, n)] = s.NsPerOp / p.NsPerOp
		}
	}
	s := r.find("wire_marshal", "serial", n)
	p := r.find("wire_marshal", "pooled", n)
	if s == nil || p == nil {
		return
	}
	if p.NsPerOp > 0 {
		r.Speedups[fmt.Sprintf("wire_marshal_pooled_vs_serial_n%d", n)] = s.NsPerOp / p.NsPerOp
	}
	if s.AllocsPerOp > 0 {
		reduction := 1 - p.AllocsPerOp/s.AllocsPerOp
		if reduction < 0 {
			reduction = 0
		}
		r.Speedups[fmt.Sprintf("wire_marshal_alloc_reduction_n%d", n)] = reduction
	}
}

// ArchiveBenchStream builds the synthetic record stream the archive
// benchmarks code — exported so bench_test.go times the codec kernels
// on exactly the records BENCH_archive.json reports.
func ArchiveBenchStream(n int) []*trace.ProfileRecord {
	return archiveBenchRecords(n)
}

// archiveBenchRecords synthesizes a two-regime record stream (the
// infeed-bound -> compute-bound shape real workloads produce).
func archiveBenchRecords(n int) []*trace.ProfileRecord {
	recs := make([]*trace.ProfileRecord, 0, n)
	var ts simclock.Time
	for i := 0; i < n; i++ {
		step := int64(i)
		compute := simclock.Duration(300 + 40*(i%7))
		infeed := simclock.Duration(600 - 30*(i%5))
		if i >= n/2 {
			compute, infeed = 700+simclock.Duration(20*(i%3)), 100
		}
		events := []trace.Event{
			{Name: "InfeedDequeueTuple", Device: trace.Host, Start: ts, Dur: infeed, Step: step},
			{Name: "fusion", Device: trace.TPU, Start: ts.Add(infeed), Dur: compute, Step: step},
			{Name: "Conv2D", Device: trace.TPU, Start: ts.Add(infeed + compute), Dur: 150, Step: step},
		}
		recs = append(recs, trace.Reduce(int64(i), ts, events, 0.2, 0.5))
		ts = ts.Add(1000)
	}
	return recs
}

// archiveBenchSummary builds a many-phase summary; variant perturbs op
// mixes and durations so the diff does real alignment work.
func archiveBenchSummary(phases int, variant int) *archive.Summary {
	s := &archive.Summary{
		Workload: "synthetic", Algorithm: "ols", Steps: int64(phases * 10),
		IdleFrac: 0.3, MXUUtil: 0.4,
	}
	var t simclock.Time
	for i := 0; i < phases; i++ {
		total := simclock.Duration(1000 + 100*(i%9) + 37*variant)
		p := archive.PhaseSummary{
			ID: i, Steps: 10, Start: t, End: t.Add(total), Total: total,
			IdleFrac: 0.2 + 0.01*float64(i%13),
			MXUUtil:  0.5 - 0.01*float64(i%11),
			Ops: []archive.OpSummary{
				{Name: fmt.Sprintf("fusion.%d", i%5), Device: trace.TPU, Count: 10,
					Total: total / simclock.Duration(2+variant)},
				{Name: "InfeedDequeueTuple", Device: trace.Host, Count: 10,
					Total: total / 4},
				{Name: fmt.Sprintf("Conv2D.%d", i%3), Device: trace.TPU, Count: 10,
					Total: total / 8},
			},
		}
		s.Phases = append(s.Phases, p)
		t = t.Add(total)
		s.TotalTime += total
	}
	return s
}
