package experiments

// The archive benchmark harness behind `paperbench -archive-bench`: it
// times the profile-archive encode/decode path (internal/archive) and
// the cross-run diff engine (internal/repo) on synthetic record
// streams and emits a BENCH_archive.json in the same document shape as
// the analyzer benchmark, so cmd/benchdiff tracks it across PRs (with
// -min-grid-speedup 0 — there is no grid/brute pair here).

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/archive"
	"repro/internal/repo"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// ArchiveBenchSizes is the record-count sweep. Both sizes run in quick
// mode too (benchdiff matches entries by (kernel, mode, n)); quick only
// shortens the measurement window.
var ArchiveBenchSizes = []int{1_000, 10_000}

// archiveBenchPhases is the per-summary phase count the diff kernel
// aligns — a deliberately hard instance (every phase must be paired).
const archiveBenchPhases = 64

// RunArchiveBench times archive encode, archive decode (open + full
// record scan, per-segment CRC verification included), and the
// phase-alignment diff. quick shortens the measurement window for CI
// smoke runs.
func RunArchiveBench(sizes []int, quick bool) (*AnalyzerBenchReport, error) {
	if len(sizes) == 0 {
		sizes = ArchiveBenchSizes
	}
	minTime := 500 * time.Millisecond
	if quick {
		minTime = 100 * time.Millisecond
	}
	rep := &AnalyzerBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Speedups:   map[string]float64{},
	}

	for _, n := range sizes {
		recs := archiveBenchRecords(n)
		meta := archive.Meta{RunID: fmt.Sprintf("bench-%d", n), Workload: "synthetic"}
		encode := func() error {
			w := archive.NewWriter(meta)
			for _, r := range recs {
				w.Add(r)
			}
			if len(w.Finalize(nil)) == 0 {
				return fmt.Errorf("empty archive")
			}
			return nil
		}
		w := archive.NewWriter(meta)
		for _, r := range recs {
			w.Add(r)
		}
		blob := w.Finalize(nil)
		decode := func() error {
			a, err := archive.Open(blob)
			if err != nil {
				return err
			}
			got, err := a.Records()
			if err != nil {
				return err
			}
			if len(got) != n {
				return fmt.Errorf("decoded %d records, want %d", len(got), n)
			}
			return nil
		}
		sa := archiveBenchSummary(archiveBenchPhases, 0)
		sb := archiveBenchSummary(archiveBenchPhases, 1)
		diff := func() error {
			d, err := repo.DiffSummaries(sa, sb)
			if err != nil {
				return err
			}
			if len(d.Matches) == 0 {
				return fmt.Errorf("no phase matches")
			}
			return nil
		}

		for _, r := range []struct {
			kernel string
			fn     func() error
		}{
			{"archive_encode", encode},
			{"archive_decode", decode},
			{"repo_diff", diff},
		} {
			iters, nsPerOp, err := measure(minTime, 0, r.fn)
			if err != nil {
				return nil, fmt.Errorf("archive-bench: %s n=%d: %w", r.kernel, n, err)
			}
			rep.Entries = append(rep.Entries, AnalyzerBenchEntry{
				Kernel: r.kernel, Mode: "serial", N: n, Workers: 1,
				Iters: iters, NsPerOp: nsPerOp,
				StepsPerSec: float64(n) * 1e9 / nsPerOp,
			})
		}
	}
	return rep, nil
}

// archiveBenchRecords synthesizes a two-regime record stream (the
// infeed-bound -> compute-bound shape real workloads produce).
func archiveBenchRecords(n int) []*trace.ProfileRecord {
	recs := make([]*trace.ProfileRecord, 0, n)
	var ts simclock.Time
	for i := 0; i < n; i++ {
		step := int64(i)
		compute := simclock.Duration(300 + 40*(i%7))
		infeed := simclock.Duration(600 - 30*(i%5))
		if i >= n/2 {
			compute, infeed = 700+simclock.Duration(20*(i%3)), 100
		}
		events := []trace.Event{
			{Name: "InfeedDequeueTuple", Device: trace.Host, Start: ts, Dur: infeed, Step: step},
			{Name: "fusion", Device: trace.TPU, Start: ts.Add(infeed), Dur: compute, Step: step},
			{Name: "Conv2D", Device: trace.TPU, Start: ts.Add(infeed + compute), Dur: 150, Step: step},
		}
		recs = append(recs, trace.Reduce(int64(i), ts, events, 0.2, 0.5))
		ts = ts.Add(1000)
	}
	return recs
}

// archiveBenchSummary builds a many-phase summary; variant perturbs op
// mixes and durations so the diff does real alignment work.
func archiveBenchSummary(phases int, variant int) *archive.Summary {
	s := &archive.Summary{
		Workload: "synthetic", Algorithm: "ols", Steps: int64(phases * 10),
		IdleFrac: 0.3, MXUUtil: 0.4,
	}
	var t simclock.Time
	for i := 0; i < phases; i++ {
		total := simclock.Duration(1000 + 100*(i%9) + 37*variant)
		p := archive.PhaseSummary{
			ID: i, Steps: 10, Start: t, End: t.Add(total), Total: total,
			IdleFrac: 0.2 + 0.01*float64(i%13),
			MXUUtil:  0.5 - 0.01*float64(i%11),
			Ops: []archive.OpSummary{
				{Name: fmt.Sprintf("fusion.%d", i%5), Device: trace.TPU, Count: 10,
					Total: total / simclock.Duration(2+variant)},
				{Name: "InfeedDequeueTuple", Device: trace.Host, Count: 10,
					Total: total / 4},
				{Name: fmt.Sprintf("Conv2D.%d", i%3), Device: trace.TPU, Count: 10,
					Total: total / 8},
			},
		}
		s.Phases = append(s.Phases, p)
		t = t.Add(total)
		s.TotalTime += total
	}
	return s
}
