package experiments

// The streaming-fidelity benchmark behind `paperbench -stream-bench`:
// the correctness contract for the streaming phase analyzer. It streams
// a synthetic multi-regime run through analyzer.NewStream via
// archive.Iter — exactly the production read path — at duty cycles 1
// and 1/10, scores the result against the batch OLS analyzer on the
// same records (phase-boundary F1, per-phase time-share MAPE), and
// records the analyzer's resident state bytes at every run length. It
// emits a BENCH_stream.json in the same document shape as the other
// harnesses, so cmd/benchdiff gates it across PRs with -min-stream-f1
// and -max-share-mape.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/archive"
	"repro/internal/core/analyzer"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// StreamBenchSizes is the run-length sweep (records ≈ steps). All
// sizes run in quick mode too; quick only shortens the measurement
// window. The largest size is the acceptance instance: 1e5 records
// through archive.Iter with bounded resident state.
var StreamBenchSizes = []int{1_000, 10_000, 100_000}

// StreamBenchDuties are the profile duty cycles scored: full-rate and
// the 1/10 sampling the fidelity gate targets.
var StreamBenchDuties = []int{1, 10}

// streamStateGrowthLimit bounds how much the analyzer's resident state
// may grow across the full size sweep (100x more records). The state is
// O(seal window + k + phases), so anything near the record-count ratio
// means a retention bug; 8x leaves room for the phase list.
const streamStateGrowthLimit = 8.0

// RunStreamBench scores the streaming analyzer against the batch OLS
// reference and times both paths. quick shortens the measurement window
// for CI smoke runs; fidelity scores are identical either way (the
// streaming path is deterministic).
func RunStreamBench(sizes []int, quick bool) (*AnalyzerBenchReport, error) {
	if len(sizes) == 0 {
		sizes = StreamBenchSizes
	}
	minTime := 500 * time.Millisecond
	if quick {
		minTime = 100 * time.Millisecond
	}
	rep := &AnalyzerBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Speedups:   map[string]float64{},
	}

	stateBytes := map[int]float64{}
	for _, n := range sizes {
		recs := streamBenchRecords(n)
		blob := streamBenchArchive(recs)

		// Batch reference: the post-hoc analyzer on the same records.
		steps := trace.AggregateSteps(recs)
		batch := analyzer.OLS(steps, analyzer.DefaultThreshold)
		if len(batch) < 2 {
			return nil, fmt.Errorf("stream-bench: generator produced %d batch phases at n=%d", len(batch), n)
		}
		batchFn := func() error {
			if got := analyzer.OLS(steps, analyzer.DefaultThreshold); len(got) != len(batch) {
				return fmt.Errorf("unstable batch phase count")
			}
			return nil
		}
		iters, nsPerOp, err := measure(minTime, 0, batchFn)
		if err != nil {
			return nil, fmt.Errorf("stream-bench: batch_ols n=%d: %w", n, err)
		}
		rep.Entries = append(rep.Entries, AnalyzerBenchEntry{
			Kernel: "batch_ols", Mode: "serial", N: n, Workers: 1,
			Iters: iters, NsPerOp: nsPerOp, StepsPerSec: float64(n) * 1e9 / nsPerOp,
		})

		for _, duty := range StreamBenchDuties {
			var last *analyzer.StreamReport
			var lastState int64
			streamFn := func() error {
				s := analyzer.NewStream("stream-bench", analyzer.StreamOptions{DutyCycle: duty})
				a, err := archive.Open(blob)
				if err != nil {
					return err
				}
				it := a.Iter()
				for it.Next() {
					if err := s.Feed(it.Record()); err != nil {
						return err
					}
				}
				if err := it.Err(); err != nil {
					return err
				}
				lastState = s.StateBytes()
				last = s.Finish()
				return nil
			}
			iters, nsPerOp, err := measure(minTime, 0, streamFn)
			if err != nil {
				return nil, fmt.Errorf("stream-bench: stream_analyze duty=%d n=%d: %w", duty, n, err)
			}
			rep.Entries = append(rep.Entries, AnalyzerBenchEntry{
				Kernel: "stream_analyze", Mode: fmt.Sprintf("duty%d", duty), N: n, Workers: 1,
				Iters: iters, NsPerOp: nsPerOp, StepsPerSec: float64(n) * 1e9 / nsPerOp,
			})

			f1 := boundaryF1(streamBoundaries(last), batchBoundaries(batch), int64(duty))
			mape := shareMAPE(last, batch)
			rep.Speedups[fmt.Sprintf("stream_boundary_f1_duty%d_n%d", duty, n)] = f1
			rep.Speedups[fmt.Sprintf("stream_share_mape_duty%d_n%d", duty, n)] = mape
			if duty == 1 {
				stateBytes[n] = float64(lastState)
				rep.Speedups[fmt.Sprintf("stream_state_bytes_n%d", n)] = float64(lastState)
			}
		}
	}

	// Bounded-memory check across the sweep: resident state must not
	// track run length.
	small, okS := stateBytes[sizes[0]]
	large, okL := stateBytes[sizes[len(sizes)-1]]
	if okS && okL && small > 0 {
		growth := large / small
		rep.Speedups["stream_state_growth"] = growth
		if growth > streamStateGrowthLimit {
			return nil, fmt.Errorf("stream-bench: resident state grew %.1fx over a %dx record sweep (limit %gx) — retention bug",
				growth, sizes[len(sizes)-1]/sizes[0], streamStateGrowthLimit)
		}
	}
	return rep, nil
}

// streamBenchArchive encodes the records as one TPAR blob, the form the
// streaming pass iterates.
func streamBenchArchive(recs []*trace.ProfileRecord) []byte {
	w := archive.NewWriter(archive.Meta{RunID: "stream-bench", Workload: "synthetic"})
	for _, r := range recs {
		w.Add(r)
	}
	return w.Finalize(nil)
}

// streamBenchRegimes are four op mixes with empty pairwise
// intersections — the boundary ground truth is exact.
var streamBenchRegimes = [][]string{
	{"InfeedDequeueTuple", "fusion", "Conv2D"},
	{"AllReduce", "CrossReplicaSum", "fusion.1"},
	{"ArgMax", "Mean", "TopKV2"},
	{"OutfeedEnqueue", "Reshape", "Slice"},
}

// streamBenchRecords synthesizes an n-step run with regime changes at
// n/4, n/2, and 3n/4 — one record per step, op durations varying per
// regime and per step so the time-share comparison is non-trivial.
func streamBenchRecords(n int) []*trace.ProfileRecord {
	recs := make([]*trace.ProfileRecord, 0, n)
	var ts simclock.Time
	for i := 0; i < n; i++ {
		step := int64(i)
		regime := i * 4 / n
		if regime > 3 {
			regime = 3
		}
		base := simclock.Duration(200 + 150*regime)
		events := make([]trace.Event, 0, 3)
		for j, op := range streamBenchRegimes[regime] {
			dur := base + simclock.Duration(17*((i+j)%9))
			events = append(events, trace.Event{
				Name: op, Device: trace.TPU, Start: ts, Dur: dur, Step: step,
			})
			ts = ts.Add(dur)
		}
		recs = append(recs, trace.Reduce(int64(i), events[0].Start, events,
			0.1+0.05*float64(regime), 0.6-0.05*float64(regime)))
	}
	return recs
}

// streamBoundaries extracts the phase-boundary step numbers of a
// streaming report (first step of every phase after the first).
func streamBoundaries(rep *analyzer.StreamReport) []int64 { return rep.Boundaries() }

// batchBoundaries extracts the boundary steps of a batch OLS result.
func batchBoundaries(phases []*analyzer.Phase) []int64 {
	var out []int64
	for _, p := range phases[1:] {
		out = append(out, p.Steps[0].Step)
	}
	return out
}

// boundaryF1 scores predicted boundaries against reference ones with a
// matching tolerance in steps (the duty cycle: a sampled run can only
// localize a boundary to the nearest sampled step). Greedy one-to-one
// matching over the sorted lists.
func boundaryF1(pred, ref []int64, tol int64) float64 {
	if len(pred) == 0 && len(ref) == 0 {
		return 1
	}
	if len(pred) == 0 || len(ref) == 0 {
		return 0
	}
	used := make([]bool, len(ref))
	matched := 0
	for _, p := range pred {
		for i, r := range ref {
			if used[i] {
				continue
			}
			d := p - r
			if d < 0 {
				d = -d
			}
			if d <= tol {
				used[i] = true
				matched++
				break
			}
		}
	}
	precision := float64(matched) / float64(len(pred))
	recall := float64(matched) / float64(len(ref))
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// shareMAPE is the mean absolute percentage error of per-phase
// time shares, streaming vs batch. Each batch phase is aligned to the
// streaming phase with maximal step-interval overlap; the share is each
// phase's fraction of its own report's total, so duty-cycled runs
// compare like for like.
func shareMAPE(stream *analyzer.StreamReport, batch []*analyzer.Phase) float64 {
	var batchTotal simclock.Duration
	for _, p := range batch {
		batchTotal += p.Total
	}
	if batchTotal == 0 || stream.TotalTime == 0 || len(stream.Phases) == 0 {
		return 1
	}
	var sum float64
	var terms int
	for _, bp := range batch {
		bFirst, bLast := bp.Steps[0].Step, bp.Steps[len(bp.Steps)-1].Step
		var best *analyzer.StreamPhase
		var bestOverlap int64 = -1
		for _, sp := range stream.Phases {
			lo, hi := maxI64(bFirst, sp.FirstStep), minI64(bLast, sp.LastStep)
			if ov := hi - lo; ov > bestOverlap {
				bestOverlap, best = ov, sp
			}
		}
		bShare := float64(bp.Total) / float64(batchTotal)
		if bShare == 0 || best == nil {
			continue
		}
		sShare := best.TimeShare(stream.TotalTime)
		diff := sShare - bShare
		if diff < 0 {
			diff = -diff
		}
		sum += diff / bShare
		terms++
	}
	if terms == 0 {
		return 1
	}
	return sum / float64(terms)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
