// Package xla implements the XLA-style compiler that lowers a TPU
// partition graph into the instruction stream the TPU device executes.
//
// Its central pass is operator fusion: chains of compute ops are merged
// into single "fusion" instructions so intermediate results stay in
// registers/HBM-local buffers instead of round-tripping through memory.
// The paper finds exactly this op at the top of every workload's TPU
// profile ("the fusion operator combines compute-intensive operations from
// the XLA compiler and is intended to help reduce memory operations"), so
// the simulated profiles must derive fusion ops the same way: from a real
// pass over the model graph, not from a hard-coded op list.
//
// The pass is a greedy producer-consumer fusion, the same shape as XLA's
// instruction fusion: a contraction (MatMul/Conv) or elementwise op
// absorbs fusible consumers as long as the producer's value has a single
// use. Data-movement ops (Reshape, Transpose, Copy) never fuse — they
// realign memory for the MXU's tiled layout — which is why the paper sees
// Reshape as a separate, expensive operator.
package xla

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/trace"
)

// Instruction is one lowered TPU operation with its cost inputs.
type Instruction struct {
	Name  string // unique instance name, e.g. "fusion.3"
	Op    string // reported op name: "fusion", "MatMul", "Reshape", ...
	FLOPs int64  // arithmetic work
	Bytes int64  // HBM traffic (reads + writes crossing the fusion boundary)
	MXU   bool   // true if the instruction occupies the matrix units
	Fused int    // number of source graph nodes folded in (1 if unfused)
}

// Program is the compiled form of one training step's TPU partition.
type Program struct {
	Name         string
	Instructions []*Instruction

	// Boundary traffic for the step, used by the device to schedule
	// infeed/outfeed transfers.
	InfeedBytes  int64
	OutfeedBytes int64

	// WeightBytes is the total parameter size resident in HBM.
	WeightBytes int64
}

// TotalFLOPs returns the program's arithmetic work per execution.
func (p *Program) TotalFLOPs() int64 {
	var f int64
	for _, in := range p.Instructions {
		f += in.FLOPs
	}
	return f
}

// TotalBytes returns the program's HBM traffic per execution.
func (p *Program) TotalBytes() int64 {
	var b int64
	for _, in := range p.Instructions {
		b += in.Bytes
	}
	return b
}

// CountOp returns how many instructions carry the given reported op name.
func (p *Program) CountOp(op string) int {
	n := 0
	for _, in := range p.Instructions {
		if in.Op == op {
			n++
		}
	}
	return n
}

// Options tune compilation. The zero value is the production configuration.
type Options struct {
	// DisableFusion lowers every op as its own instruction, paying full
	// memory traffic between ops — the ablation baseline that shows what
	// the fusion pass buys.
	DisableFusion bool
}

// Compile lowers a TPU-device graph into a Program.
// The graph must validate and contain only TPU-device nodes (plus
// placeholders standing in for host inputs, which become infeed traffic).
func Compile(g *graph.Graph) (*Program, error) {
	return CompileWithOptions(g, Options{})
}

// CompileWithOptions is Compile with explicit compilation options.
func CompileWithOptions(g *graph.Graph, opts Options) (*Program, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("xla: %w", err)
	}
	order, err := g.Toposort()
	if err != nil {
		return nil, err
	}
	consumers := g.Consumers()

	// --- Fusion clustering ---------------------------------------------
	// cluster[i] is the root node of the cluster node i belongs to.
	cluster := make(map[*graph.Node]*graph.Node, len(order))
	for _, n := range order {
		cluster[n] = n
	}
	find := func(n *graph.Node) *graph.Node {
		for cluster[n] != n {
			cluster[n] = cluster[cluster[n]] // path halving
			n = cluster[n]
		}
		return n
	}

	for _, n := range order {
		if opts.DisableFusion {
			break
		}
		if !fusibleConsumer(n) {
			continue
		}
		// Try to join the cluster of a fusible producer whose value has a
		// single consumer (us): that value never hits memory.
		for _, in := range n.Inputs {
			if in.Device != trace.TPU {
				continue
			}
			if len(consumers[in]) != 1 {
				continue
			}
			if !fusibleProducer(in) {
				continue
			}
			root := find(in)
			// A cluster may hold at most one contraction: two matmuls
			// in one fusion would serialize on the same MXU pass.
			if n.Kind() == graph.KindContraction && clusterHasContraction(root, cluster, order) {
				continue
			}
			cluster[find(n)] = root
			break
		}
	}

	// --- Emit instructions in topological order of cluster roots --------
	type clusterInfo struct {
		root  *graph.Node
		nodes []*graph.Node
	}
	infos := make(map[*graph.Node]*clusterInfo)
	var roots []*graph.Node
	for _, n := range order {
		r := find(n)
		ci, ok := infos[r]
		if !ok {
			ci = &clusterInfo{root: r}
			infos[r] = ci
			roots = append(roots, r)
		}
		ci.nodes = append(ci.nodes, n)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })

	prog := &Program{Name: g.Name()}
	fusionSeq := 0
	for _, r := range roots {
		ci := infos[r]
		inst := emit(ci.nodes, cluster, find, &fusionSeq)
		if inst == nil {
			continue // pure-structural cluster: no runtime work
		}
		prog.Instructions = append(prog.Instructions, inst)
	}

	// --- Boundary traffic ------------------------------------------------
	for _, n := range order {
		switch {
		case n.Op == graph.OpPlaceholder:
			prog.InfeedBytes += n.OutBytes()
		case n.Op == graph.OpConst:
			prog.WeightBytes += n.OutBytes()
		case n.Op == graph.OpOutfeed:
			prog.OutfeedBytes += n.OutBytes()
		case len(consumers[n]) == 0 && n.Kind() != graph.KindOptimizer && n.Op != graph.OpOutfeed:
			// Graph outputs without an explicit Outfeed still leave the
			// device (loss scalars, summaries).
			prog.OutfeedBytes += n.OutBytes()
		}
	}
	return prog, nil
}

// fusibleConsumer reports whether n may join its producer's cluster.
func fusibleConsumer(n *graph.Node) bool {
	switch n.Kind() {
	case graph.KindElementwise, graph.KindReduction, graph.KindNormalize, graph.KindContraction:
		return true
	default:
		return false
	}
}

// fusibleProducer reports whether a node's cluster may absorb consumers.
func fusibleProducer(n *graph.Node) bool {
	switch n.Kind() {
	case graph.KindElementwise, graph.KindContraction, graph.KindNormalize:
		return true
	default:
		return false
	}
}

func clusterHasContraction(root *graph.Node, cluster map[*graph.Node]*graph.Node, order []*graph.Node) bool {
	for _, n := range order {
		if n.Kind() != graph.KindContraction {
			continue
		}
		r := n
		for cluster[r] != r {
			r = cluster[r]
		}
		if r == root {
			return true
		}
	}
	return false
}

// emit lowers one cluster to an instruction, or nil for structural-only
// clusters (constants, placeholders) that involve no runtime work.
func emit(nodes []*graph.Node, cluster map[*graph.Node]*graph.Node, find func(*graph.Node) *graph.Node, fusionSeq *int) *Instruction {
	var work []*graph.Node
	for _, n := range nodes {
		if n.Kind() != graph.KindStructural {
			work = append(work, n)
		}
	}
	if len(work) == 0 {
		return nil
	}
	inst := &Instruction{Fused: len(work)}
	root := work[0]

	var flops int64
	var mxu bool
	for _, n := range work {
		flops += n.FLOPs
		if n.Kind() == graph.KindContraction {
			mxu = true
		}
	}
	inst.FLOPs = flops
	inst.MXU = mxu

	// Bytes: traffic crossing the cluster boundary. Inputs from outside
	// the cluster are read; the cluster's terminal outputs are written;
	// per-node extra Bytes (weight reads) always count.
	inCluster := make(map[*graph.Node]bool, len(work))
	for _, n := range work {
		inCluster[n] = true
	}
	var bytes int64
	for _, n := range work {
		bytes += n.Bytes
		for _, in := range n.Inputs {
			if !inCluster[in] {
				bytes += in.OutBytes()
			}
		}
	}
	// Terminal writes: nodes whose consumers are all outside (approximated
	// by the last node of the cluster in topo order, plus any node listed
	// in no other cluster member's inputs).
	consumedInside := make(map[*graph.Node]bool)
	for _, n := range work {
		for _, in := range n.Inputs {
			if inCluster[in] {
				consumedInside[in] = true
			}
		}
	}
	for _, n := range work {
		if !consumedInside[n] {
			bytes += n.OutBytes()
		}
	}
	inst.Bytes = bytes

	if len(work) > 1 {
		inst.Op = "fusion"
		inst.Name = fmt.Sprintf("fusion.%d", *fusionSeq)
		*fusionSeq++
		return inst
	}
	// Singleton: keep the original op identity.
	inst.Op = root.Op
	inst.Name = root.Name
	// Data movement costs double traffic: read + realign + write.
	if root.Kind() == graph.KindDataMove {
		inst.Bytes = 2 * root.OutBytes()
		if root.Bytes > 0 {
			inst.Bytes += root.Bytes
		}
	}
	return inst
}
