package xla

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// randomGraph builds a random but well-formed TPU step graph: a chain of
// layers with random op kinds, occasional fan-out, and per-node FLOPs.
func randomGraph(seed uint64, n int) *graph.Graph {
	rng := prng.New(seed)
	g := graph.New(fmt.Sprintf("rand-%d", seed))
	spec := tensor.NewSpec(tensor.BFloat16, 8, 64)
	nodes := []*graph.Node{
		g.MustAdd("in", graph.OpPlaceholder, trace.TPU, spec),
	}
	ops := []string{
		graph.OpMatMul, graph.OpAdd, graph.OpRelu, graph.OpTanh,
		graph.OpReshape, graph.OpTranspose, graph.OpSoftmax,
		graph.OpMul, graph.OpSum, graph.OpFusedBN, graph.OpLayerNorm,
	}
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		in := nodes[rng.Intn(len(nodes))]
		var inputs []*graph.Node
		inputs = append(inputs, in)
		if op == graph.OpMatMul {
			w := g.MustAdd(fmt.Sprintf("w%d", i), graph.OpConst, trace.TPU, spec)
			inputs = append(inputs, w)
		}
		nd := g.MustAdd(fmt.Sprintf("n%d", i), op, trace.TPU, spec, inputs...)
		nd.FLOPs = int64(rng.Intn(1_000_000))
	}
	return g
}

// Property: compilation conserves FLOPs exactly and never produces a
// negative-cost or zero-fused instruction, fused or not.
func TestPropertyCompileConservesFLOPs(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := 1 + int(sizeRaw%60)
		g := randomGraph(seed, n)
		for _, opts := range []Options{{}, {DisableFusion: true}} {
			p, err := CompileWithOptions(g, opts)
			if err != nil {
				return false
			}
			if p.TotalFLOPs() != g.TotalFLOPs(trace.TPU) {
				return false
			}
			for _, inst := range p.Instructions {
				if inst.FLOPs < 0 || inst.Bytes < 0 || inst.Fused < 1 {
					return false
				}
				if inst.Op == "" || inst.Name == "" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: fusion never increases instruction count or HBM traffic
// relative to the unfused lowering of the same graph.
func TestPropertyFusionNeverHurts(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := 2 + int(sizeRaw%60)
		g := randomGraph(seed, n)
		fused, err := Compile(g)
		if err != nil {
			return false
		}
		unfused, err := CompileWithOptions(g, Options{DisableFusion: true})
		if err != nil {
			return false
		}
		return len(fused.Instructions) <= len(unfused.Instructions) &&
			fused.TotalBytes() <= unfused.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every non-structural graph node lands in exactly one
// instruction (the Fused counts sum to the work-node count).
func TestPropertyNoWorkLost(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := 1 + int(sizeRaw%60)
		g := randomGraph(seed, n)
		p, err := Compile(g)
		if err != nil {
			return false
		}
		workNodes := 0
		for _, nd := range g.Nodes() {
			if nd.Kind() != graph.KindStructural {
				workNodes++
			}
		}
		fusedSum := 0
		for _, inst := range p.Instructions {
			fusedSum += inst.Fused
		}
		return fusedSum == workNodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
