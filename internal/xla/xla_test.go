package xla

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func spec(dims ...int) tensor.Spec {
	return tensor.NewSpec(tensor.BFloat16, dims...)
}

// buildMLPStep builds a tiny dense-layer step graph:
// placeholder -> matmul(w1) -> add(b1) -> relu -> matmul(w2) -> softmax
// with a reshape between the two layers.
func buildMLPStep(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New("mlp")
	x := g.MustAdd("x", graph.OpPlaceholder, trace.TPU, spec(32, 128))
	w1 := g.MustAdd("w1", graph.OpConst, trace.TPU, spec(128, 256))
	b1 := g.MustAdd("b1", graph.OpConst, trace.TPU, spec(256))
	mm1 := g.MustAdd("mm1", graph.OpMatMul, trace.TPU, spec(32, 256), x, w1)
	mm1.FLOPs = tensor.MatMulFLOPs(x.Out, w1.Out)
	add := g.MustAdd("add", graph.OpAdd, trace.TPU, spec(32, 256), mm1, b1)
	add.FLOPs = add.Out.Shape.Elements()
	relu := g.MustAdd("relu", graph.OpRelu, trace.TPU, spec(32, 256), add)
	relu.FLOPs = relu.Out.Shape.Elements()
	rs := g.MustAdd("rs", graph.OpReshape, trace.TPU, spec(32, 256), relu)
	w2 := g.MustAdd("w2", graph.OpConst, trace.TPU, spec(256, 10))
	mm2 := g.MustAdd("mm2", graph.OpMatMul, trace.TPU, spec(32, 10), rs, w2)
	mm2.FLOPs = tensor.MatMulFLOPs(rs.Out, w2.Out)
	sm := g.MustAdd("sm", graph.OpSoftmax, trace.TPU, spec(32, 10), mm2)
	sm.FLOPs = 5 * sm.Out.Shape.Elements()
	return g
}

func compileMLP(t testing.TB) *Program {
	t.Helper()
	p, err := Compile(buildMLPStep(t))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileProducesFusion(t *testing.T) {
	p := compileMLP(t)
	if p.CountOp("fusion") == 0 {
		t.Fatalf("no fusion instructions; got %+v", opNames(p))
	}
}

func TestFusionAbsorbsElementwiseChain(t *testing.T) {
	p := compileMLP(t)
	// mm1+add+relu should be one fusion (mm1's output has a single
	// consumer, as do add and relu).
	var f *Instruction
	for _, in := range p.Instructions {
		if in.Op == "fusion" && in.Fused >= 3 {
			f = in
		}
	}
	if f == nil {
		t.Fatalf("no 3-way fusion found: %+v", describe(p))
	}
	if !f.MXU {
		t.Fatal("fusion containing MatMul not marked MXU")
	}
}

func TestReshapeNeverFuses(t *testing.T) {
	p := compileMLP(t)
	if n := p.CountOp(graph.OpReshape); n != 1 {
		t.Fatalf("Reshape instructions = %d, want 1 standalone", n)
	}
	for _, in := range p.Instructions {
		if in.Op == graph.OpReshape && in.Fused != 1 {
			t.Fatal("Reshape was fused")
		}
	}
}

func TestReshapeCostsDoubleTraffic(t *testing.T) {
	p := compileMLP(t)
	for _, in := range p.Instructions {
		if in.Op == graph.OpReshape {
			want := int64(2 * 32 * 256 * 2) // 2x out bytes, bf16
			if in.Bytes != want {
				t.Fatalf("Reshape bytes = %d, want %d", in.Bytes, want)
			}
			return
		}
	}
	t.Fatal("no reshape instruction")
}

func TestTwoContractionsDontShareFusion(t *testing.T) {
	g := graph.New("mm-chain")
	x := g.MustAdd("x", graph.OpPlaceholder, trace.TPU, spec(8, 8))
	w1 := g.MustAdd("w1", graph.OpConst, trace.TPU, spec(8, 8))
	w2 := g.MustAdd("w2", graph.OpConst, trace.TPU, spec(8, 8))
	mm1 := g.MustAdd("mm1", graph.OpMatMul, trace.TPU, spec(8, 8), x, w1)
	g.MustAdd("mm2", graph.OpMatMul, trace.TPU, spec(8, 8), mm1, w2)
	p, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	mxuInsts := 0
	for _, in := range p.Instructions {
		if in.MXU {
			mxuInsts++
		}
	}
	if mxuInsts != 2 {
		t.Fatalf("MXU instructions = %d, want 2 (matmuls must not merge): %v", mxuInsts, describe(p))
	}
}

func TestMultiConsumerValueBlocksFusion(t *testing.T) {
	// x -> relu consumed by two ops: relu's value is materialized, so the
	// consumers cannot join relu's cluster through it.
	g := graph.New("multi")
	x := g.MustAdd("x", graph.OpPlaceholder, trace.TPU, spec(4, 4))
	relu := g.MustAdd("relu", graph.OpRelu, trace.TPU, spec(4, 4), x)
	g.MustAdd("a", graph.OpTanh, trace.TPU, spec(4, 4), relu)
	g.MustAdd("b", graph.OpSigmoid, trace.TPU, spec(4, 4), relu)
	p, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.CountOp("fusion") != 0 {
		t.Fatalf("fusion across multi-consumer value: %v", describe(p))
	}
	if len(p.Instructions) != 3 {
		t.Fatalf("instructions = %d, want 3", len(p.Instructions))
	}
}

func TestStructuralNodesEmitNoInstructions(t *testing.T) {
	g := graph.New("structural")
	g.MustAdd("c", graph.OpConst, trace.TPU, spec(100, 100))
	g.MustAdd("p", graph.OpPlaceholder, trace.TPU, spec(10))
	p, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instructions) != 0 {
		t.Fatalf("structural nodes produced instructions: %v", describe(p))
	}
}

func TestBoundaryTraffic(t *testing.T) {
	p := compileMLP(t)
	// Infeed: the x placeholder, 32*128 bf16.
	if want := int64(32 * 128 * 2); p.InfeedBytes != want {
		t.Fatalf("InfeedBytes = %d, want %d", p.InfeedBytes, want)
	}
	// Outfeed: softmax output is the sole sink: 32*10 bf16.
	if want := int64(32 * 10 * 2); p.OutfeedBytes != want {
		t.Fatalf("OutfeedBytes = %d, want %d", p.OutfeedBytes, want)
	}
	// Weights: w1 + b1 + w2.
	want := int64((128*256 + 256 + 256*10) * 2)
	if p.WeightBytes != want {
		t.Fatalf("WeightBytes = %d, want %d", p.WeightBytes, want)
	}
}

func TestFLOPsConserved(t *testing.T) {
	g := buildMLPStep(t)
	p, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalFLOPs() != g.TotalFLOPs(trace.TPU) {
		t.Fatalf("compile changed FLOPs: %d vs %d", p.TotalFLOPs(), g.TotalFLOPs(trace.TPU))
	}
}

func TestFusionReducesTraffic(t *testing.T) {
	// The point of fusion: HBM traffic of the fused program must be lower
	// than the sum of unfused in+out traffic of the same ops.
	p := compileMLP(t)
	g := buildMLPStep(t)
	var unfused int64
	for _, n := range g.Nodes() {
		if n.Kind() == graph.KindStructural {
			continue
		}
		unfused += n.OutBytes()
		for _, in := range n.Inputs {
			unfused += in.OutBytes()
		}
	}
	if p.TotalBytes() >= unfused {
		t.Fatalf("fusion did not reduce traffic: %d >= %d", p.TotalBytes(), unfused)
	}
}

func TestCompileRejectsInvalidGraph(t *testing.T) {
	g := graph.New("bad")
	g.MustAdd("inf", graph.OpInfeed, trace.Host, spec(1))
	if _, err := Compile(g); err == nil {
		t.Fatal("invalid graph compiled")
	}
}

func TestCompileDeterministic(t *testing.T) {
	a, b := compileMLP(t), compileMLP(t)
	if len(a.Instructions) != len(b.Instructions) {
		t.Fatal("nondeterministic instruction count")
	}
	for i := range a.Instructions {
		if a.Instructions[i].Name != b.Instructions[i].Name ||
			a.Instructions[i].Op != b.Instructions[i].Op ||
			a.Instructions[i].FLOPs != b.Instructions[i].FLOPs {
			t.Fatalf("instruction %d differs between compiles", i)
		}
	}
}

func opNames(p *Program) []string {
	var out []string
	for _, in := range p.Instructions {
		out = append(out, in.Op)
	}
	return out
}

func describe(p *Program) []string {
	var out []string
	for _, in := range p.Instructions {
		out = append(out, in.Name+"("+in.Op+")")
	}
	return out
}

func BenchmarkCompileMLP(b *testing.B) {
	g := buildMLPStep(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(g); err != nil {
			b.Fatal(err)
		}
	}
}
