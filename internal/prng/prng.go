// Package prng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every stochastic decision in the repository (step jitter, dataset record
// sizes, pipeline service-time noise) flows through this package with a
// caller-supplied seed, so whole-system runs are bit-for-bit reproducible.
// The generator is SplitMix64, which is tiny, fast, passes BigCrush when
// used as a 64-bit stream, and — unlike math/rand's global state — is safe
// to embed one-per-component without locking.
package prng

import "math"

// Source is a deterministic 64-bit PRNG (SplitMix64).
// The zero value is a valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork derives an independent child generator from s, keyed by id.
// Children with distinct ids produce uncorrelated streams, which lets a
// component hand stable sub-seeds to its own sub-components.
func (s *Source) Fork(id uint64) *Source {
	// Mix the id through one SplitMix64 round so Fork(0), Fork(1), ...
	// land far apart in the sequence space.
	z := s.Uint64() + id*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return &Source{state: z}
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns an int uniform on [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a float64 uniform on [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, via the Box-Muller transform.
func (s *Source) Normal(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns base scaled by a factor uniform on [1-f, 1+f].
// It is the standard way simulator components add service-time noise.
func (s *Source) Jitter(base float64, f float64) float64 {
	if f <= 0 {
		return base
	}
	return base * (1 + f*(2*s.Float64()-1))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
