package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c0 := parent.Fork(0)
	parent2 := New(7)
	c1 := parent2.Fork(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c0.Uint64() == c1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams overlap too much: %d collisions", same)
	}
}

func TestForkDeterminism(t *testing.T) {
	a := New(9).Fork(3)
	b := New(9).Fork(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Fork is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniform draw = %g, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d of 10 values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %g, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Normal stddev = %g, want ~2", math.Sqrt(variance))
	}
}

func TestJitterBounds(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		v := s.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) out of [90,110]: %g", v)
		}
	}
}

func TestJitterZeroFactor(t *testing.T) {
	s := New(19)
	if v := s.Jitter(42, 0); v != 42 {
		t.Fatalf("Jitter with f=0 changed value: %g", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%50)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64BitSpread(t *testing.T) {
	// Every bit position should flip at least once over a modest sample.
	s := New(23)
	var ones uint64
	var zeros uint64
	for i := 0; i < 1000; i++ {
		v := s.Uint64()
		ones |= v
		zeros |= ^v
	}
	if ones != ^uint64(0) {
		t.Errorf("some bits never set: %064b", ones)
	}
	if zeros != ^uint64(0) {
		t.Errorf("some bits never cleared: %064b", zeros)
	}
}
