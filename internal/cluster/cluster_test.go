package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/repo"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// runOnce builds a cluster at the given phase-1 parallelism, schedules it
// under policy, saves the archives, and returns everything observable:
// the schedule trace, the report, and the raw stored bytes.
func runOnce(t *testing.T, spec Spec, par int, policy string) (*Result, map[string][]byte) {
	t.Helper()
	spec.Parallelism = par
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Schedule(policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := storage.NewService()
	bucket, err := svc.CreateBucket(fmt.Sprintf("det-p%d", par))
	if err != nil {
		t.Fatal(err)
	}
	r := repo.New(bucket)
	saved, err := c.SaveArchives(r, res, "det")
	if err != nil {
		t.Fatal(err)
	}
	if saved != res.Report.Accepted {
		t.Fatalf("lost jobs: saved %d archives, accepted %d", saved, res.Report.Accepted)
	}
	objs := map[string][]byte{}
	for _, name := range bucket.List("") {
		obj, err := bucket.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		objs[name] = obj.Data
	}
	return res, objs
}

// The determinism hard contract: same seed + spec ⇒ bit-identical
// schedule trace, fairness report, and archived profiles at any
// -parallelism. Run with -race in CI.
func TestDeterminismAcrossParallelism(t *testing.T) {
	spec, err := Preset("smoke", 42)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, baseObjs := runOnce(t, spec, 1, PolicyLeastLoad)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		res, objs := runOnce(t, spec, par, PolicyLeastLoad)
		if !reflect.DeepEqual(baseRes.Outcomes, res.Outcomes) {
			t.Fatalf("parallelism %d: schedule trace diverged", par)
		}
		if !reflect.DeepEqual(baseRes.Report, res.Report) {
			t.Fatalf("parallelism %d: fairness report diverged:\nbase: %+v\n got: %+v",
				par, baseRes.Report, res.Report)
		}
		if len(objs) != len(baseObjs) {
			t.Fatalf("parallelism %d: %d stored objects, want %d", par, len(objs), len(baseObjs))
		}
		for name, data := range baseObjs {
			if !bytes.Equal(objs[name], data) {
				t.Fatalf("parallelism %d: object %s differs byte-wise", par, name)
			}
		}
	}
}

// Accepted ⇒ archived (zero lost jobs), shed ⇒ rpc.ErrBusy, and the
// accounting identities hold across the report.
func TestZeroLossAccounting(t *testing.T) {
	spec, err := Preset("rush", 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range Policies() {
		res, err := c.Schedule(policy, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Report
		if rep.Submitted != rep.Accepted+rep.Shed {
			t.Fatalf("%s: submitted %d != accepted %d + shed %d",
				policy, rep.Submitted, rep.Accepted, rep.Shed)
		}
		if rep.Completed != rep.Accepted {
			t.Fatalf("%s: completed %d != accepted %d", policy, rep.Completed, rep.Accepted)
		}
		total := 0
		for _, ts := range spec.Tenants {
			total += ts.Jobs
		}
		if rep.Submitted != total {
			t.Fatalf("%s: submitted %d, want %d", policy, rep.Submitted, total)
		}
		for _, o := range res.Outcomes {
			if o.Accepted {
				if o.ShedErr != nil || o.Worker < 0 || o.End < o.Start {
					t.Fatalf("%s: bad accepted outcome %+v", policy, o)
				}
				continue
			}
			if !errors.Is(o.ShedErr, rpc.ErrBusy) {
				t.Fatalf("%s: shed job %s error %v does not wrap rpc.ErrBusy",
					policy, o.Job.ID, o.ShedErr)
			}
			if !rpc.IsTransient(o.ShedErr) {
				t.Fatalf("%s: shed error %v not transient", policy, o.ShedErr)
			}
		}

		svc := storage.NewService()
		bucket, err := svc.CreateBucket("loss-" + policy)
		if err != nil {
			t.Fatal(err)
		}
		r := repo.New(bucket)
		saved, err := c.SaveArchives(r, res, policy)
		if err != nil {
			t.Fatal(err)
		}
		if saved != rep.Accepted {
			t.Fatalf("%s: saved %d, accepted %d", policy, saved, rep.Accepted)
		}
		runs, err := r.List(repo.Filter{})
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != saved {
			t.Fatalf("%s: listed %d runs, saved %d", policy, len(runs), saved)
		}
		frep, err := r.Fsck(false)
		if err != nil {
			t.Fatal(err)
		}
		if !frep.Clean() {
			t.Fatalf("%s: fsck not clean: %+v", policy, frep)
		}
	}
}

// The saved archives carry tenant identity end-to-end so runs list
// -tenant works against cluster fleets.
func TestSavedArchivesCarryTenant(t *testing.T) {
	spec, err := Preset("smoke", 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Schedule(PolicyRoundRobin, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("tenancy")
	r := repo.New(bucket)
	if _, err := c.SaveArchives(r, res, "smoke"); err != nil {
		t.Fatal(err)
	}
	perTenant := map[string]int{}
	for _, o := range res.Outcomes {
		if o.Accepted {
			perTenant[o.Job.Tenant]++
		}
	}
	for tenant, want := range perTenant {
		runs, err := r.List(repo.Filter{Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != want {
			t.Fatalf("tenant %s: listed %d, want %d", tenant, len(runs), want)
		}
		for _, info := range runs {
			if info.Tenant != tenant {
				t.Fatalf("run %s tenant %q, want %q", info.RunID, info.Tenant, tenant)
			}
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good, err := Preset("smoke", 1)
	if err != nil {
		t.Fatal(err)
	}
	good = good.withDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	mutate := func(f func(*Spec)) Spec {
		s := good
		s.Tenants = append([]TenantSpec(nil), good.Tenants...)
		f(&s)
		return s
	}
	bads := []struct {
		name string
		s    Spec
	}{
		{"no-workers", mutate(func(s *Spec) { s.Workers = 0 })},
		{"no-steps", mutate(func(s *Spec) { s.Steps = -1 })},
		{"no-queue", mutate(func(s *Spec) { s.QueueDepth = -2 })},
		{"no-tenants", mutate(func(s *Spec) { s.Tenants = nil })},
		{"dup-tenant", mutate(func(s *Spec) { s.Tenants = append(s.Tenants, s.Tenants[0]) })},
		{"no-jobs", mutate(func(s *Spec) { s.Tenants[0].Jobs = 0 })},
		{"no-workloads", mutate(func(s *Spec) { s.Tenants[0].Workloads = nil })},
		{"bad-arrival", mutate(func(s *Spec) { s.Tenants[0].ArrivalMeanUs = 0 })},
		{"bad-rate", mutate(func(s *Spec) { s.Tenants[0].RatePerSec = 0 })},
		{"bad-host", mutate(func(s *Spec) { s.HostSpec.Cores = -1 })},
	}
	for _, tc := range bads {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.s.Validate(); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("Validate() = %v, want ErrBadSpec", err)
			}
		})
	}
	if _, err := Preset("no-such", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestSignatureDistance(t *testing.T) {
	a := signature{{"Conv2D", 0.7}, {"MatMul", 0.3}}
	b := signature{{"Conv2D", 0.7}, {"MatMul", 0.3}}
	if d := a.Distance(b); d != 0 {
		t.Fatalf("identical signatures distance %g", d)
	}
	c := signature{{"Softmax", 1.0}}
	if d := a.Distance(c); d != 2 {
		t.Fatalf("disjoint signatures distance %g, want 2", d)
	}
	if d := signature(nil).Distance(a); d != 2 {
		t.Fatalf("nil signature distance %g, want 2", d)
	}
	shifted := signature{{"Conv2D", 0.6}, {"MatMul", 0.4}}
	if d := a.Distance(shifted); d < 0.19 || d > 0.21 {
		t.Fatalf("shifted distance %g, want ~0.2", d)
	}
}
