package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simclock"
)

// TenantStats is one tenant's slice of the fairness report.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Submitted int    `json:"submitted"`
	Accepted  int    `json:"accepted"`
	Shed      int    `json:"shed"`
	Completed int    `json:"completed"`

	WaitP50 simclock.Duration `json:"wait_p50_us"`
	WaitP95 simclock.Duration `json:"wait_p95_us"`
	WaitP99 simclock.Duration `json:"wait_p99_us"`

	// MeanSlowdown is the mean of (wait+service)/isolated over the
	// tenant's completed jobs: 1.0 means the fleet felt like a private
	// machine.
	MeanSlowdown float64 `json:"mean_slowdown"`

	// ServiceTime is total service received — the allocation Jain's
	// index is computed over.
	ServiceTime simclock.Duration `json:"service_time_us"`
}

// WorkerStats is one worker's utilization summary.
type WorkerStats struct {
	Worker      int               `json:"worker"`
	Jobs        int               `json:"jobs"`
	Setups      int               `json:"setups"`
	Busy        simclock.Duration `json:"busy_us"`
	Utilization float64           `json:"utilization"`
}

// Report is the per-policy fairness/interference characterization.
type Report struct {
	Policy    string `json:"policy"`
	Workers   int    `json:"workers"`
	Submitted int    `json:"submitted"`
	Accepted  int    `json:"accepted"`
	Shed      int    `json:"shed"`
	Completed int    `json:"completed"`

	Makespan simclock.Duration `json:"makespan_us"`

	// JainIndex is Jain's fairness index over per-tenant service time:
	// 1 is perfectly fair, 1/n is one tenant taking everything.
	JainIndex float64 `json:"jain_index"`

	// MaxWaitP99 is the worst tenant's p99 queueing delay — the
	// regression-gated latency number.
	MaxWaitP99 simclock.Duration `json:"max_wait_p99_us"`

	MeanUtilization float64 `json:"mean_utilization"`

	Tenants     []TenantStats `json:"tenants"`
	WorkerStats []WorkerStats `json:"worker_stats"`
}

// buildReport folds a finished schedule into the fairness report.
func (c *Cluster) buildReport(policy string, outcomes []Outcome, workers []*workerState, end simclock.Time) *Report {
	rep := &Report{Policy: policy, Workers: len(workers), Makespan: end.Sub(0)}

	perTenant := map[string]*TenantStats{}
	waits := map[string][]simclock.Duration{}
	order := make([]string, 0, len(c.spec.Tenants))
	for _, t := range c.spec.Tenants {
		perTenant[t.Name] = &TenantStats{Tenant: t.Name}
		order = append(order, t.Name)
	}
	for i := range outcomes {
		o := &outcomes[i]
		ts := perTenant[o.Job.Tenant]
		ts.Submitted++
		rep.Submitted++
		if !o.Accepted {
			ts.Shed++
			rep.Shed++
			continue
		}
		ts.Accepted++
		ts.Completed++
		ts.ServiceTime += o.Service
		ts.MeanSlowdown += o.Slowdown
		rep.Accepted++
		rep.Completed++
		waits[o.Job.Tenant] = append(waits[o.Job.Tenant], o.Wait)
	}

	var sum, sumSq float64
	for _, name := range order {
		ts := perTenant[name]
		if ts.Completed > 0 {
			ts.MeanSlowdown /= float64(ts.Completed)
		}
		ws := waits[name]
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		ts.WaitP50 = percentile(ws, 0.50)
		ts.WaitP95 = percentile(ws, 0.95)
		ts.WaitP99 = percentile(ws, 0.99)
		if ts.WaitP99 > rep.MaxWaitP99 {
			rep.MaxWaitP99 = ts.WaitP99
		}
		x := float64(ts.ServiceTime)
		sum += x
		sumSq += x * x
		rep.Tenants = append(rep.Tenants, *ts)
	}
	if n := float64(len(order)); n > 0 && sumSq > 0 {
		rep.JainIndex = sum * sum / (n * sumSq)
	}

	for _, w := range workers {
		u := w.busyTime.Seconds() / end.Sub(0).Seconds()
		if end <= 0 {
			u = 0
		}
		rep.WorkerStats = append(rep.WorkerStats, WorkerStats{
			Worker: w.id, Jobs: w.jobs, Setups: w.setups,
			Busy: w.busyTime, Utilization: u,
		})
		rep.MeanUtilization += u
	}
	if len(workers) > 0 {
		rep.MeanUtilization /= float64(len(workers))
	}
	return rep
}

// percentile returns the nearest-rank percentile of sorted values, or 0
// for an empty slice.
func percentile(sorted []simclock.Duration, p float64) simclock.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}

// String renders the report as the CLI's human-readable fairness table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster %s: %d workers, %d jobs (%d accepted, %d shed), makespan %s, Jain %.3f, mean util %.1f%%\n",
		r.Policy, r.Workers, r.Submitted, r.Accepted, r.Shed, r.Makespan, r.JainIndex, 100*r.MeanUtilization)
	fmt.Fprintf(&b, "%-12s %5s %5s %5s %12s %12s %12s %10s\n",
		"tenant", "subm", "acc", "shed", "wait-p50", "wait-p99", "service", "slowdown")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-12s %5d %5d %5d %12s %12s %12s %9.2fx\n",
			t.Tenant, t.Submitted, t.Accepted, t.Shed,
			t.WaitP50, t.WaitP99, t.ServiceTime, t.MeanSlowdown)
	}
	return b.String()
}
