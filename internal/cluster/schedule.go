package cluster

import (
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Outcome is one job's fate in a scheduled run — the unit of the
// diffable schedule trace.
type Outcome struct {
	Job      Job
	Accepted bool
	ShedErr  error // ErrTenantRate or ErrQueueFull when !Accepted
	Worker   int   // -1 when shed

	Start   simclock.Time     // dispatch time (accepted only)
	End     simclock.Time     // completion time
	Wait    simclock.Duration // arrival → dispatch
	Service simclock.Duration // dilated service time incl. setup
	Setup   bool              // paid the signature-switch setup cost

	// Slowdown is (wait + service) / isolated duration: the cost of
	// running in the shared fleet instead of alone.
	Slowdown float64
}

// Result is one policy's scheduled run over a prepared cluster.
type Result struct {
	Policy   string
	Outcomes []Outcome // arrival order
	Report   *Report
}

// Schedule replays the scheduling layer over the prepared jobs under the
// given policy. The loop is strictly sequential on a shared simclock.Sim —
// the cheap phase of the simulation, so running it once per policy reuses
// the expensive per-job pipelines.
func (c *Cluster) Schedule(policy string, reg *obs.Registry) (*Result, error) {
	rt, err := newRouter(policy, c.spec.AffinityEps, c.spec.QueueDepth)
	if err != nil {
		return nil, err
	}
	if reg == nil {
		reg = obs.NewRegistry(64)
	}
	var (
		mSubmitted = reg.Counter("cluster.jobs.submitted")
		mAccepted  = reg.Counter("cluster.jobs.accepted")
		mShed      = reg.Counter("cluster.jobs.shed")
		mCompleted = reg.Counter("cluster.jobs.completed")
		mSetups    = reg.Counter("cluster.worker.setups")
		hWait      = reg.Histogram("cluster.wait_us")
	)
	reg.Gauge("cluster.workers").Set(int64(c.spec.Workers))

	sim := simclock.New()
	workers := make([]*workerState, c.spec.Workers)
	for i := range workers {
		workers[i] = &workerState{id: i}
	}
	buckets := make(map[string]*tokenBucket, len(c.spec.Tenants))
	for _, t := range c.spec.Tenants {
		buckets[t.Name] = newTokenBucket(t)
	}
	outcomes := make([]Outcome, len(c.jobs))

	// service computes a job's dilated runtime at dispatch: the isolated
	// duration stretched by storage contention from busy pod neighbors,
	// plus the setup cost when the worker switches op-mix signatures.
	service := func(now simclock.Time, w *workerState, jobIdx int) (simclock.Duration, bool) {
		iso := c.results[jobIdx].dur
		podStart := (w.id / c.spec.PodSize) * c.spec.PodSize
		podEnd := podStart + c.spec.PodSize
		if podEnd > len(workers) {
			podEnd = len(workers)
		}
		busy, peers := 0, 0
		for i := podStart; i < podEnd; i++ {
			if i == w.id {
				continue
			}
			peers++
			if workers[i].busy {
				busy++
			}
		}
		d := float64(iso)
		if peers > 0 {
			d *= 1 + c.spec.InterferenceAlpha*float64(busy)/float64(peers)
		}
		sig := c.sigs[c.jobs[jobIdx].Workload]
		setup := w.sig.Distance(sig) > c.spec.AffinityEps
		if setup {
			d += c.spec.SetupUs
		}
		return simclock.Duration(d + 0.5), setup
	}

	var dispatch func(w *workerState, jobIdx int)
	dispatch = func(w *workerState, jobIdx int) {
		now := sim.Now()
		job := c.jobs[jobIdx]
		dur, setup := service(now, w, jobIdx)
		w.busy = true
		w.busyUntil = now.Add(dur)
		w.sig = c.sigs[job.Workload]
		w.jobs++
		w.busyTime += dur
		if setup {
			w.setups++
			mSetups.Inc()
		}
		o := &outcomes[jobIdx]
		o.Start = now
		o.End = w.busyUntil
		o.Wait = now.Sub(job.Arrival)
		o.Service = dur
		o.Setup = setup
		o.Slowdown = float64(o.Wait+dur) / float64(c.results[jobIdx].dur)
		hWait.Observe(int64(o.Wait))
		sim.At(w.busyUntil, func() {
			mCompleted.Inc()
			w.busy = false
			if len(w.queue) > 0 {
				next := w.queue[0]
				w.queue = w.queue[1:]
				w.backlog -= c.results[next].dur
				dispatch(w, next)
			}
		})
	}

	for i := range c.jobs {
		i := i
		job := c.jobs[i]
		sim.At(job.Arrival, func() {
			mSubmitted.Inc()
			o := &outcomes[i]
			o.Job = job
			o.Worker = -1
			if !buckets[job.Tenant].take(sim.Now()) {
				o.ShedErr = ErrTenantRate
				mShed.Inc()
				reg.Emit("cluster", "shed", job.ID+": tenant over rate")
				return
			}
			wid := rt.pick(sim.Now(), c.sigs[job.Workload], workers)
			w := workers[wid]
			if w.busy && len(w.queue) >= c.spec.QueueDepth {
				o.ShedErr = ErrQueueFull
				mShed.Inc()
				reg.Emit("cluster", "shed", job.ID+": queue full")
				return
			}
			o.Accepted = true
			o.Worker = wid
			mAccepted.Inc()
			if w.busy {
				w.queue = append(w.queue, i)
				w.backlog += c.results[i].dur
				return
			}
			dispatch(w, i)
		})
	}
	sim.Run()

	res := &Result{Policy: policy, Outcomes: outcomes}
	res.Report = c.buildReport(policy, outcomes, workers, sim.Now())
	return res, nil
}
