package cluster

import (
	"fmt"

	"repro/internal/simclock"
)

// workerState is one simulated TPU worker in the scheduling layer. The
// heavy simulation already ran in phase 1; here a worker is a serial
// server with a bounded FIFO queue and an op-mix memory for affinity.
type workerState struct {
	id        int
	queue     []int // indices into the cluster's job slice
	busy      bool
	busyUntil simclock.Time
	backlog   simclock.Duration // sum of queued jobs' isolated durations
	sig       signature         // last dispatched job's op-mix; nil = cold

	jobs     int
	setups   int
	busyTime simclock.Duration
}

// backlogEnd estimates when the worker would start one more queued job:
// the current job's completion (or now if idle) plus the queued backlog.
// An idle worker with an empty queue returns exactly now, so it always
// beats any busy worker — the work-conservation property the router
// tests pin down.
func (w *workerState) backlogEnd(now simclock.Time) simclock.Time {
	start := now
	if w.busy && w.busyUntil > start {
		start = w.busyUntil
	}
	return start.Add(w.backlog)
}

// router picks a worker for a job. Implementations must be deterministic:
// same state, same pick.
type router interface {
	name() string
	pick(now simclock.Time, sig signature, workers []*workerState) int
}

// newRouter resolves a policy name.
func newRouter(policy string, affinityEps float64, queueDepth int) (router, error) {
	switch policy {
	case PolicyRoundRobin:
		return &roundRobin{}, nil
	case PolicyLeastLoad:
		return leastLoaded{}, nil
	case PolicyAffinity:
		return affinity{eps: affinityEps, depth: queueDepth}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q (have %v)", policy, Policies())
	}
}

// roundRobin rotates through workers in index order, ignoring load.
type roundRobin struct{ next int }

func (r *roundRobin) name() string { return PolicyRoundRobin }

func (r *roundRobin) pick(_ simclock.Time, _ signature, workers []*workerState) int {
	id := r.next % len(workers)
	r.next++
	return id
}

// leastLoaded picks the worker with the earliest backlog end, breaking
// ties by lowest index.
type leastLoaded struct{}

func (leastLoaded) name() string { return PolicyLeastLoad }

func (leastLoaded) pick(now simclock.Time, _ signature, workers []*workerState) int {
	return argminBacklog(now, workers)
}

func argminBacklog(now simclock.Time, workers []*workerState) int {
	best := 0
	bestEnd := workers[0].backlogEnd(now)
	for i := 1; i < len(workers); i++ {
		if end := workers[i].backlogEnd(now); end < bestEnd {
			best, bestEnd = i, end
		}
	}
	return best
}

// affinity prefers workers whose last op-mix signature is within eps of
// the job's (no setup cost), choosing least-loaded among them; when no
// worker matches it falls back to plain least-loaded over everyone — a
// deterministic fallback, not a random spray.
//
// Matching workers whose queue is already full are skipped: without that
// guard the first worker to acquire a signature attracts that
// signature's whole stream, its queue overflows, and the rest of the
// fleet never warms up. Spilling the overflow through the least-loaded
// fallback seeds fresh workers with the signature instead.
type affinity struct {
	eps   float64
	depth int // the fleet's QueueDepth, for the overflow guard
}

func (affinity) name() string { return PolicyAffinity }

func (a affinity) pick(now simclock.Time, sig signature, workers []*workerState) int {
	best := -1
	var bestEnd simclock.Time
	for i, w := range workers {
		if w.sig.Distance(sig) > a.eps {
			continue
		}
		if w.busy && len(w.queue) >= a.depth {
			continue // would be shed on arrival; spill to the fallback
		}
		if end := w.backlogEnd(now); best == -1 || end < bestEnd {
			best, bestEnd = i, end
		}
	}
	if best >= 0 {
		return best
	}
	return argminBacklog(now, workers)
}
