// Package cluster lifts the single-device simulation into a shared-clock
// multi-tenant TPU fleet: N simulated workers (each a tpu.Device + host
// pipeline driven by the estimator), a job router with pluggable policies,
// and per-tenant admission control. Every accepted job runs the real
// workload→profiler→archive pipeline, so a cluster run yields a fleet of
// diffable archived profiles plus a fairness/interference report.
//
// Determinism is a hard contract: the same Spec and seed produce a
// bit-identical schedule, report, and archive set at any Parallelism. The
// simulation is therefore split into three phases:
//
//  1. per-job isolated pipelines, each a pure function of its JobSpec,
//     computed in parallel (parallel.Map preserves order);
//  2. a strictly sequential shared-simclock scheduling loop (arrivals,
//     admission, routing, dispatch, completion) over those results;
//  3. archive construction in deterministic completion order.
//
// Cross-tenant interference is modeled at the scheduling layer: a job's
// service time is its isolated duration dilated by the fraction of busy
// pod neighbors at dispatch (pods of PodSize workers share storage
// bandwidth), plus a setup cost when a worker switches op-mix signatures.
// The archived profile remains the isolated execution; the dilation and
// queueing show up in the fairness report as slowdown versus that
// isolated baseline.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/host"
	"repro/internal/prng"
	"repro/internal/simclock"
	"repro/internal/tpu"
)

// Router policy names.
const (
	PolicyRoundRobin = "round-robin"
	PolicyLeastLoad  = "least-loaded"
	PolicyAffinity   = "workload-affinity"
)

// Policies lists the routing policies in canonical order.
func Policies() []string {
	return []string{PolicyRoundRobin, PolicyLeastLoad, PolicyAffinity}
}

// ErrBadSpec rejects cluster specs that cannot be simulated.
var ErrBadSpec = errors.New("cluster: invalid spec")

// TenantSpec describes one tenant's offered load and admission budget.
type TenantSpec struct {
	Name      string
	Workloads []string // op mix: each job draws one of these
	Jobs      int      // jobs submitted over the run

	// ArrivalMeanUs is the mean inter-arrival gap (exponential), in
	// simulated µs.
	ArrivalMeanUs float64

	// RatePerSec is the token-bucket refill rate in jobs per simulated
	// second; Burst is the bucket capacity. A tenant arriving with an
	// empty bucket is shed with rpc.ErrBusy.
	RatePerSec float64
	Burst      int
}

// Spec describes one cluster run.
type Spec struct {
	Workers int         // simulated TPU workers
	PodSize int         // workers per pod (interference domain); default 8
	Version tpu.Version // chip generation for every worker (default V2)

	// HostSpec is the per-worker host VM; the zero value means
	// host.DefaultSpec().
	HostSpec host.Spec

	Seed  uint64
	Steps int // train steps per job (compressed runs); default 6

	// QueueDepth bounds each worker's wait queue: a job routed to a
	// worker whose queue is full is shed with rpc.ErrBusy. Default 4.
	QueueDepth int

	// AffinityEps is the max L1 op-mix distance the workload-affinity
	// policy treats as "same signature". Default 0.10.
	AffinityEps float64

	// InterferenceAlpha scales service-time dilation by busy pod
	// neighbors. Default 0.35.
	InterferenceAlpha float64

	// SetupUs is the worker setup cost when the incoming job's op-mix
	// signature differs from the worker's last one (program reload,
	// weight transfer). Default 150ms of simulated time.
	SetupUs float64

	// Parallelism bounds the phase-1 pipeline pool; 0 uses GOMAXPROCS.
	// It must not affect any result — that is the determinism contract.
	Parallelism int

	Tenants []TenantSpec
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.PodSize == 0 {
		s.PodSize = 8
	}
	if s.Version == 0 {
		s.Version = tpu.V2
	}
	if s.HostSpec == (host.Spec{}) {
		s.HostSpec = host.DefaultSpec()
	}
	if s.Steps == 0 {
		s.Steps = 6
	}
	if s.QueueDepth == 0 {
		s.QueueDepth = 4
	}
	if s.AffinityEps == 0 {
		s.AffinityEps = 0.10
	}
	if s.InterferenceAlpha == 0 {
		s.InterferenceAlpha = 0.35
	}
	if s.SetupUs == 0 {
		s.SetupUs = 150_000
	}
	return s
}

// Validate rejects non-simulable specs with a typed error.
func (s Spec) Validate() error {
	if s.Workers < 1 {
		return fmt.Errorf("%w: Workers = %d, must be >= 1", ErrBadSpec, s.Workers)
	}
	if s.PodSize < 1 {
		return fmt.Errorf("%w: PodSize = %d, must be >= 1", ErrBadSpec, s.PodSize)
	}
	if s.Steps < 1 {
		return fmt.Errorf("%w: Steps = %d, must be >= 1", ErrBadSpec, s.Steps)
	}
	if s.QueueDepth < 1 {
		return fmt.Errorf("%w: QueueDepth = %d, must be >= 1", ErrBadSpec, s.QueueDepth)
	}
	if err := tpu.NewChipSpec(s.Version).Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := s.HostSpec.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("%w: no tenants", ErrBadSpec)
	}
	seen := map[string]bool{}
	for _, t := range s.Tenants {
		if t.Name == "" {
			return fmt.Errorf("%w: tenant with empty name", ErrBadSpec)
		}
		if seen[t.Name] {
			return fmt.Errorf("%w: duplicate tenant %q", ErrBadSpec, t.Name)
		}
		seen[t.Name] = true
		if t.Jobs < 1 {
			return fmt.Errorf("%w: tenant %q has %d jobs", ErrBadSpec, t.Name, t.Jobs)
		}
		if len(t.Workloads) == 0 {
			return fmt.Errorf("%w: tenant %q has no workloads", ErrBadSpec, t.Name)
		}
		if !(t.ArrivalMeanUs > 0) {
			return fmt.Errorf("%w: tenant %q ArrivalMeanUs = %g", ErrBadSpec, t.Name, t.ArrivalMeanUs)
		}
		if !(t.RatePerSec > 0) || t.Burst < 1 {
			return fmt.Errorf("%w: tenant %q rate %g burst %d", ErrBadSpec, t.Name, t.RatePerSec, t.Burst)
		}
	}
	return nil
}

// Job is one unit of offered load: a workload run on behalf of a tenant.
type Job struct {
	ID       string // "<tenant>-j<idx>", unique within a run
	Tenant   string
	Index    int // index within the tenant's submission stream
	Workload string
	Seed     uint64
	Arrival  simclock.Time
}

// makeJobs expands the tenant specs into the global arrival sequence,
// sorted by (arrival, tenant, index) so ties are total-ordered.
func makeJobs(s Spec) []Job {
	var jobs []Job
	for ti, t := range s.Tenants {
		src := prng.New(s.Seed).Fork(uint64(ti) + 1)
		var at float64
		for j := 0; j < t.Jobs; j++ {
			// Exponential inter-arrival; 1-u keeps the argument in (0,1].
			u := src.Float64()
			at += -t.ArrivalMeanUs * math.Log(1-u)
			wl := t.Workloads[src.Intn(len(t.Workloads))]
			jobs = append(jobs, Job{
				ID:       fmt.Sprintf("%s-j%03d", t.Name, j),
				Tenant:   t.Name,
				Index:    j,
				Workload: wl,
				Seed:     s.Seed ^ fnv(t.Name)*31 ^ uint64(j+1)*0x9e3779b97f4a7c15,
				Arrival:  simclock.Time(at + 0.5),
			})
		}
	}
	sort.Slice(jobs, func(i, j int) bool {
		a, b := jobs[i], jobs[j]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Index < b.Index
	})
	return jobs
}

// fnv hashes a name into a stable seed component.
func fnv(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Preset returns a named cluster spec. Presets share the CLI and the
// bench harness so every documented scenario is reproducible by name.
func Preset(name string, seed uint64) (Spec, error) {
	switch name {
	case "smoke":
		// Tiny: CI smoke and examples.
		return Spec{
			Workers: 4, PodSize: 4, Seed: seed, Steps: 6,
			Tenants: []TenantSpec{
				{Name: "vision", Workloads: []string{"dcgan-mnist"}, Jobs: 12,
					ArrivalMeanUs: 400_000, RatePerSec: 8, Burst: 4},
				{Name: "nlp", Workloads: []string{"bert-mrpc"}, Jobs: 12,
					ArrivalMeanUs: 400_000, RatePerSec: 8, Burst: 4},
			},
		}, nil
	case "rush":
		// A contended 8-worker fleet with a hot tenant that overruns its
		// token bucket.
		return Spec{
			Workers: 8, PodSize: 4, Seed: seed, Steps: 6,
			Tenants: []TenantSpec{
				{Name: "vision", Workloads: []string{"dcgan-mnist", "dcgan-cifar10"}, Jobs: 40,
					ArrivalMeanUs: 150_000, RatePerSec: 6, Burst: 3},
				{Name: "nlp", Workloads: []string{"bert-mrpc", "bert-cola"}, Jobs: 30,
					ArrivalMeanUs: 200_000, RatePerSec: 6, Burst: 3},
				{Name: "detect", Workloads: []string{"retinanet-coco"}, Jobs: 25,
					ArrivalMeanUs: 250_000, RatePerSec: 5, Burst: 2},
				{Name: "batch", Workloads: []string{"resnet-imagenet"}, Jobs: 25,
					ArrivalMeanUs: 60_000, RatePerSec: 3, Burst: 2},
			},
		}, nil
	case "fleet":
		// The acceptance scenario: 64 workers, 8 tenants, 1000 jobs.
		ts := make([]TenantSpec, 0, 8)
		mixes := [][]string{
			{"dcgan-mnist"}, {"bert-mrpc"}, {"dcgan-mnist", "bert-mrpc"},
			{"dcgan-cifar10"}, {"bert-cola"}, {"dcgan-mnist", "dcgan-cifar10"},
			{"bert-mrpc", "bert-cola"}, {"dcgan-mnist", "bert-cola"},
		}
		for i := 0; i < 8; i++ {
			ts = append(ts, TenantSpec{
				Name:          fmt.Sprintf("tenant-%d", i),
				Workloads:     mixes[i],
				Jobs:          125,
				ArrivalMeanUs: 40_000 + 10_000*float64(i%4),
				RatePerSec:    30,
				Burst:         8,
			})
		}
		return Spec{
			Workers: 64, PodSize: 8, Seed: seed, Steps: 4, QueueDepth: 6,
			Tenants: ts,
		}, nil
	default:
		return Spec{}, fmt.Errorf("cluster: unknown preset %q (have smoke, rush, fleet)", name)
	}
}

// PresetNames lists the named cluster scenarios.
func PresetNames() []string { return []string{"smoke", "rush", "fleet"} }
