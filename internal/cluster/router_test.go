package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/simclock"
)

// twoSigSpec builds a small spec with two workload signatures so affinity
// has something to key on.
func twoSigSpec(seed uint64, workers, jobsPer int) Spec {
	return Spec{
		Workers: workers, PodSize: 4, Seed: seed, Steps: 4, QueueDepth: 64,
		Tenants: []TenantSpec{
			{Name: "a", Workloads: []string{"dcgan-mnist"}, Jobs: jobsPer,
				ArrivalMeanUs: 50_000, RatePerSec: 1000, Burst: 1000},
			{Name: "b", Workloads: []string{"bert-mrpc"}, Jobs: jobsPer,
				ArrivalMeanUs: 50_000, RatePerSec: 1000, Burst: 1000},
		},
	}
}

// Property: under least-loaded routing a job never waits while some other
// worker sits idle at its arrival — the work-conservation property of the
// backlog-end argmin. Seeds vary the arrival process.
func TestPropertyLeastLoadedWorkConserving(t *testing.T) {
	// Reuse one cluster (pipelines are the expensive part) and replay the
	// property over seeds by regenerating arrivals only: different seeds
	// build different clusters, so bound the count.
	f := func(seedRaw uint8) bool {
		spec := twoSigSpec(uint64(seedRaw)+1, 3, 8)
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Schedule(PolicyLeastLoad, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild worker busy intervals from the outcomes.
		type span struct{ start, end simclock.Time }
		busy := make(map[int][]span)
		for _, o := range res.Outcomes {
			if o.Accepted {
				busy[o.Worker] = append(busy[o.Worker], span{o.Start, o.End})
			}
		}
		idleAt := func(w int, at simclock.Time) bool {
			for _, s := range busy[w] {
				if s.start <= at && at < s.end {
					return false
				}
			}
			return true
		}
		for _, o := range res.Outcomes {
			if !o.Accepted || o.Wait == 0 {
				continue
			}
			// The job queued: at its arrival no worker may be idle.
			for w := 0; w < spec.Workers; w++ {
				if idleAt(w, o.Job.Arrival) {
					t.Logf("job %s waited %s while worker %d idle at %d",
						o.Job.ID, o.Wait, w, o.Job.Arrival)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// workload-affinity must fall back deterministically when no worker
// matches the job's signature: on a cold fleet (every sig nil, distance
// 2 > eps) it must behave exactly like least-loaded, pick the same
// workers, and repeat bit-identically run over run.
func TestAffinityDeterministicFallback(t *testing.T) {
	now := simclock.Time(1000)
	sig := signature{{"MatMul", 1.0}}
	cold := func() []*workerState {
		ws := make([]*workerState, 5)
		for i := range ws {
			ws[i] = &workerState{id: i}
		}
		// Worker 2 is the least loaded among busy ones; 0,1 idle.
		ws[2].busy = true
		ws[2].busyUntil = now.Add(10)
		ws[3].busy = true
		ws[3].busyUntil = now.Add(100)
		ws[4].busy = true
		ws[4].busyUntil = now.Add(100)
		return ws
	}
	a := affinity{eps: 0.10, depth: 4}
	ll := leastLoaded{}
	for i := 0; i < 3; i++ {
		ws := cold()
		got := a.pick(now, sig, ws)
		want := ll.pick(now, sig, ws)
		if got != want {
			t.Fatalf("cold-fleet affinity pick %d, least-loaded %d", got, want)
		}
		if got != 0 {
			t.Fatalf("fallback picked %d, want lowest-index idle worker 0", got)
		}
	}

	// A matching signature beats a less-loaded non-matching worker.
	ws := cold()
	ws[4].sig = sig // matching but heavily loaded
	if got := a.pick(now, sig, ws); got != 4 {
		t.Fatalf("affinity ignored matching worker: pick %d, want 4", got)
	}
	// But two matching workers are split by load.
	ws[1].sig = sig
	if got := a.pick(now, sig, ws); got != 1 {
		t.Fatalf("affinity load tie-break: pick %d, want idle worker 1", got)
	}
}

// End-to-end: affinity pays fewer setup costs than round-robin on a
// two-signature mix, and both schedules replay identically.
func TestAffinityReducesSetups(t *testing.T) {
	spec := twoSigSpec(11, 4, 12)
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	setups := map[string]int{}
	for _, policy := range []string{PolicyRoundRobin, PolicyAffinity} {
		reg := obs.NewRegistry(16)
		res, err := c.Schedule(policy, reg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, w := range res.Report.WorkerStats {
			n += w.Setups
		}
		setups[policy] = n
		if got := reg.Snapshot().C("cluster.worker.setups"); got != int64(n) {
			t.Fatalf("%s: obs setups %d, report %d", policy, got, n)
		}
		// Replay equality.
		res2, err := c.Schedule(policy, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Outcomes {
			if res.Outcomes[i] != res2.Outcomes[i] {
				t.Fatalf("%s: outcome %d diverged on replay", policy, i)
			}
		}
	}
	if setups[PolicyAffinity] >= setups[PolicyRoundRobin] {
		t.Fatalf("affinity setups %d not below round-robin %d",
			setups[PolicyAffinity], setups[PolicyRoundRobin])
	}
}

// Round-robin must spread accepted jobs across all workers.
func TestRoundRobinSpreads(t *testing.T) {
	spec := twoSigSpec(5, 4, 10)
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Schedule(PolicyRoundRobin, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Report.WorkerStats {
		if w.Jobs == 0 {
			t.Fatalf("worker %d got no jobs under round-robin: %+v", w.Worker, res.Report.WorkerStats)
		}
	}
}

// Admission: a tenant over its token budget is shed with ErrTenantRate; a
// full queue sheds with ErrQueueFull.
func TestAdmissionControl(t *testing.T) {
	spec := Spec{
		Workers: 1, PodSize: 1, Seed: 9, Steps: 4, QueueDepth: 1,
		Tenants: []TenantSpec{
			// Arrivals every ~2ms against a refill of 1 token/s: almost
			// everything after the burst is rate-shed.
			{Name: "greedy", Workloads: []string{"dcgan-mnist"}, Jobs: 30,
				ArrivalMeanUs: 2_000, RatePerSec: 1, Burst: 2},
		},
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Schedule(PolicyLeastLoad, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rate, queue int
	for _, o := range res.Outcomes {
		switch o.ShedErr {
		case ErrTenantRate:
			rate++
		case ErrQueueFull:
			queue++
		}
	}
	if rate == 0 {
		t.Fatal("token bucket never shed a greedy tenant")
	}
	if res.Report.Shed != rate+queue {
		t.Fatalf("shed accounting: %d != %d rate + %d queue", res.Report.Shed, rate, queue)
	}
	// Burst-sized prefix is always admitted.
	if !res.Outcomes[0].Accepted || !res.Outcomes[1].Accepted {
		t.Fatal("burst tokens not honored")
	}
}

func TestTokenBucketRefill(t *testing.T) {
	b := newTokenBucket(TenantSpec{RatePerSec: 2, Burst: 2})
	if !b.take(0) || !b.take(0) {
		t.Fatal("burst not available at t=0")
	}
	if b.take(0) {
		t.Fatal("empty bucket granted a token")
	}
	// 500ms at 2 tokens/s refills one token.
	if !b.take(simclock.Time(500_000)) {
		t.Fatal("refill after 500ms failed")
	}
	if b.take(simclock.Time(500_000)) {
		t.Fatal("double-spend after refill")
	}
}
