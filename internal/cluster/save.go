package cluster

import (
	"fmt"
	"sort"

	"repro/internal/archive"
	"repro/internal/repo"
)

// SaveArchives writes every completed job's profile into the repository
// in deterministic completion order (end time, job ID as tiebreak), so
// CreatedSeq assignment — and therefore every archive byte — is
// independent of the Parallelism the pipelines ran at.
//
// Run IDs are "<label>-<jobID>"; the label distinguishes policies when
// several scheduled runs share one repository. Returns the number of
// archives saved; zero lost jobs means it equals Result.Report.Accepted.
func (c *Cluster) SaveArchives(r *repo.Repo, res *Result, label string) (int, error) {
	idx := make([]int, 0, len(res.Outcomes))
	for i := range res.Outcomes {
		if res.Outcomes[i].Accepted {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		oa, ob := res.Outcomes[idx[a]], res.Outcomes[idx[b]]
		if oa.End != ob.End {
			return oa.End < ob.End
		}
		return oa.Job.ID < ob.Job.ID
	})
	hostSpec := fmt.Sprintf("%dc %gMBps", c.spec.HostSpec.Cores, c.spec.HostSpec.ReadMBps)
	saved := 0
	for _, i := range idx {
		o := res.Outcomes[i]
		jr := c.results[i]
		seq, err := r.NextSeq()
		if err != nil {
			return saved, fmt.Errorf("cluster: saving %s: %w", o.Job.ID, err)
		}
		w := archive.NewWriter(archive.Meta{
			RunID:      label + "-" + o.Job.ID,
			Workload:   o.Job.Workload,
			Label:      label,
			Tenant:     o.Job.Tenant,
			HostSpec:   hostSpec,
			TPUVersion: c.chip.Name,
			CreatedSeq: seq,
		})
		for _, rec := range jr.records {
			w.Add(rec)
		}
		if _, err := r.Save(w.Finalize(archive.SummarizeReport(jr.report))); err != nil {
			return saved, fmt.Errorf("cluster: saving %s: %w", o.Job.ID, err)
		}
		saved++
	}
	return saved, nil
}
