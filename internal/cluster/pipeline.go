package cluster

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core/analyzer"
	"repro/internal/estimator"
	"repro/internal/parallel"
	"repro/internal/simclock"
	"repro/internal/tpu"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/xla"
)

// signature is a workload's op-mix fingerprint: each compiled op's share
// of the jitter-free step time, sorted by op name. The workload-affinity
// router keys on it.
type signature []opShare

type opShare struct {
	Op    string
	Share float64
}

// Distance returns the L1 distance between two signatures (0 = identical
// mixes, 2 = disjoint). A nil signature is maximally distant.
func (s signature) Distance(o signature) float64 {
	if s == nil || o == nil {
		return 2
	}
	var d float64
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i].Op == o[j].Op:
			d += abs(s[i].Share - o[j].Share)
			i++
			j++
		case s[i].Op < o[j].Op:
			d += s[i].Share
			i++
		default:
			d += o[j].Share
			j++
		}
	}
	for ; i < len(s); i++ {
		d += s[i].Share
	}
	for ; j < len(o); j++ {
		d += o[j].Share
	}
	return d
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// computeSignature compiles the workload's train graph and folds each
// instruction's roofline time into per-op shares on the given chip.
func computeSignature(w *workloads.Workload, spec tpu.ChipSpec) (signature, error) {
	prog, err := xla.Compile(w.TrainGraph)
	if err != nil {
		return nil, fmt.Errorf("cluster: compiling %s for signature: %w", w.Name, err)
	}
	dev := tpu.NewDevice(spec, 0)
	shares := map[string]float64{}
	var total float64
	for _, inst := range prog.Instructions {
		t := float64(dev.InstructionTime(inst))
		shares[inst.Op] += t
		total += t
	}
	if total <= 0 {
		return nil, fmt.Errorf("cluster: %s has no compute", w.Name)
	}
	sig := make(signature, 0, len(shares))
	for op, t := range shares {
		sig = append(sig, opShare{Op: op, Share: t / total})
	}
	sort.Slice(sig, func(i, j int) bool { return sig[i].Op < sig[j].Op })
	return sig, nil
}

// jobResult is the isolated per-job pipeline output: what the job's
// profile looks like when it runs alone on one worker.
type jobResult struct {
	records []*trace.ProfileRecord
	report  *analyzer.Report
	dur     simclock.Duration // isolated runtime D_iso
}

// runPipeline executes one job's full isolated pipeline: train run with
// the profiler polling a window per step, window reduction, and phase
// analysis. It is a pure function of (workload, job, steps) — the
// determinism contract leans on that.
func runPipeline(w *workloads.Workload, job Job, steps int) (jobResult, error) {
	var (
		svc  *tpu.ProfileService
		recs []*trace.ProfileRecord
	)
	take := func(resp tpu.ProfileResponse) {
		if resp.WindowEnd <= resp.WindowStart {
			return
		}
		recs = append(recs, trace.Reduce(int64(len(recs)), resp.WindowStart,
			resp.Events, resp.IdleFrac, resp.MXUUtil))
	}
	r, err := estimator.New(w, estimator.Options{
		Steps:       steps,
		Seed:        job.Seed,
		DisableEval: true,
		// Poll the profile service after every step so window boundaries
		// land at deterministic simulated times. The wall-clock profiler
		// goroutine cannot be used here: its polling cadence depends on
		// real time and would break bit-identical replay.
		OnTrainStep: func(_ *estimator.Runner, _ int64, _ tpu.StepTiming) {
			take(svc.NextWindow())
		},
	})
	if err != nil {
		return jobResult{}, fmt.Errorf("cluster: job %s: %w", job.ID, err)
	}
	svc = r.ProfileService()
	if err := r.Run(); err != nil {
		return jobResult{}, fmt.Errorf("cluster: job %s: %w", job.ID, err)
	}
	// Drain the tail (shutdown ops past the last step's window).
	for {
		resp := svc.NextWindow()
		take(resp)
		if resp.EndOfStream || resp.WindowEnd <= resp.WindowStart {
			break
		}
	}
	rep, err := analyzer.Analyze(w.Name, recs, analyzer.OLSAlgo,
		analyzer.Options{Seed: job.Seed, Parallelism: 1})
	if err != nil {
		return jobResult{}, fmt.Errorf("cluster: job %s: analyze: %w", job.ID, err)
	}
	return jobResult{records: recs, report: rep, dur: r.TotalTime()}, nil
}

// Cluster is a prepared fleet simulation: jobs generated, isolated
// pipelines run, signatures computed. Schedule replays the scheduling
// layer over it — cheap enough to run once per policy.
type Cluster struct {
	spec    Spec
	chip    tpu.ChipSpec
	jobs    []Job
	results []jobResult
	sigs    map[string]signature
}

// New validates the spec, generates the arrival sequence, and runs every
// job's isolated pipeline (in parallel; order-preserving).
func New(spec Spec) (*Cluster, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	chip := tpu.NewChipSpec(spec.Version)

	// One Workload instance per distinct name, shared read-only by the
	// parallel pipelines (Get calibrates, which costs milliseconds).
	names := map[string]bool{}
	for _, t := range spec.Tenants {
		for _, wl := range t.Workloads {
			names[wl] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	cache := make(map[string]*workloads.Workload, len(sorted))
	sigs := make(map[string]signature, len(sorted))
	for _, n := range sorted {
		w, err := workloads.Get(n)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		w.HostSpec = spec.HostSpec
		sig, err := computeSignature(w, chip)
		if err != nil {
			return nil, err
		}
		cache[n] = w
		sigs[n] = sig
	}

	jobs := makeJobs(spec)
	pool := parallel.New(spec.Parallelism)
	results, err := parallel.Map(pool, context.Background(), len(jobs), 1,
		func(_, lo, _ int) (jobResult, error) {
			return runPipeline(cache[jobs[lo].Workload], jobs[lo], spec.Steps)
		})
	if err != nil {
		return nil, err
	}
	return &Cluster{spec: spec, chip: chip, jobs: jobs, results: results, sigs: sigs}, nil
}

// Spec returns the (default-filled) spec the cluster was built with.
func (c *Cluster) Spec() Spec { return c.spec }

// Jobs returns the arrival-ordered job sequence.
func (c *Cluster) Jobs() []Job { return c.jobs }
