package cluster

import (
	"fmt"

	"repro/internal/rpc"
	"repro/internal/simclock"
)

// Shed reasons. Both wrap rpc.ErrBusy so the existing reconnect/backoff
// client machinery (rpc.IsTransient) treats cluster shedding exactly like
// collector busy-shedding: retry later, don't fail the run.
var (
	ErrTenantRate = fmt.Errorf("cluster: tenant over admission rate: %w", rpc.ErrBusy)
	ErrQueueFull  = fmt.Errorf("cluster: worker queue full: %w", rpc.ErrBusy)
)

// tokenBucket is the per-tenant admission budget, refilled in simulated
// time. All inputs are simulated quantities, so refills replay exactly.
type tokenBucket struct {
	ratePerSec float64 // tokens per simulated second
	burst      float64
	tokens     float64
	last       simclock.Time
}

func newTokenBucket(t TenantSpec) *tokenBucket {
	return &tokenBucket{
		ratePerSec: t.RatePerSec,
		burst:      float64(t.Burst),
		tokens:     float64(t.Burst), // start full
	}
}

// take refills for elapsed simulated time and spends one token if
// available. Refill depends only on (last, now, rate) — all simulated
// quantities — so admission decisions replay bit-identically.
func (b *tokenBucket) take(now simclock.Time) bool {
	if now > b.last {
		b.tokens += now.Sub(b.last).Seconds() * b.ratePerSec
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
