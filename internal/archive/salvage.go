// Archive salvage: the lenient counterpart to Open. Open is all-or-
// nothing by design — one flipped byte fails the whole blob, which is
// the right contract for the repository's validation path but the
// wrong one for disaster recovery. Salvage recovers every segment that
// still proves its integrity and reports exactly what was lost, so a
// truncated upload or a torn collector write costs the damaged
// segments, not the run.
package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/trace"
)

// SalvageReport itemizes what Salvage recovered and what it gave up.
type SalvageReport struct {
	// FooterIntact reports whether the footer index survived. With a
	// footer, segments are judged by their recorded CRC32C; without
	// one, by a sequential scan validated by record decoding.
	FooterIntact bool
	// SegmentsTotal is how many segments were considered: the footer's
	// index size, or (footerless) the count of candidates the scan
	// reached before stopping.
	SegmentsTotal int
	// SegmentsKept is how many segments passed verification and
	// contributed records.
	SegmentsKept int
	// LostSegments are the zero-based indices of segments dropped for
	// bad bounds, CRC mismatch, or undecodable contents.
	LostSegments []int
	// RecordsKept is the number of records recovered.
	RecordsKept int64
	// BytesDropped counts payload bytes in lost segments plus, on the
	// footerless path, the unparseable tail (which includes whatever
	// remains of the footer itself).
	BytesDropped int64
}

// Lossless reports whether salvage recovered a footer-intact archive
// with every segment verified — i.e. Open would have succeeded too.
func (sr *SalvageReport) Lossless() bool {
	return sr.FooterIntact && len(sr.LostSegments) == 0
}

// SalvageResult is the recovered contents of a damaged archive.
type SalvageResult struct {
	// Meta is the run metadata; zero when the footer was lost (the
	// blob's identity must then come from outside, e.g. its manifest
	// entry or object name).
	Meta Meta
	// Summary is the embedded analyzer summary, nil if absent or lost
	// with the footer.
	Summary *Summary
	// Records are the recovered records, in archive order. Only
	// records from verified segments appear: a CRC-failing segment
	// contributes nothing, however plausible its bytes.
	Records []*trace.ProfileRecord
	// Report itemizes the recovery.
	Report SalvageReport
}

// Salvage recovers every intact segment from a damaged archive blob.
// It is deterministic (a pure serial function of the input), never
// panics, and fails only when the input provably is not this format's
// data at all: too short for a header, wrong magic, or an unsupported
// version. Everything else — missing footer, torn tail, flipped bytes
// mid-segment — degrades to a partial result with the damage itemized
// in the report.
//
// Two recovery modes:
//
//   - Footer intact: each indexed segment is bounds- and CRC32C-checked
//     exactly as Open would, then decoded; failures drop that segment
//     only. Metadata and the analyzer summary survive.
//   - Footer lost (truncated tail, bad trailer magic, undecodable
//     footer): segments are re-discovered by scanning the body's
//     u32-length framing from the top, each candidate validated by
//     decoding its records; the scan stops at the first frame that
//     does not parse, and everything after it is counted as dropped.
func Salvage(data []byte) (*SalvageResult, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:4]) != headerMagic {
		return nil, fmt.Errorf("%w: header %q", ErrBadMagic, data[:4])
	}
	if v := data[4]; v != Version {
		return nil, fmt.Errorf("%w: %d (reader supports %d)", ErrVersion, v, Version)
	}
	if a, bodyEnd := salvageFooter(data); a != nil {
		return salvageIndexed(data, a, bodyEnd), nil
	}
	return salvageScan(data), nil
}

// salvageFooter attempts Open's trailer+footer parse without failing
// the blob: nil means the footer is unusable and the caller must fall
// back to the sequential scan. bodyEnd is where segment payloads stop
// (the footer's first byte).
func salvageFooter(data []byte) (a *Archive, bodyEnd int64) {
	if len(data) < headerLen+trailerLen {
		return nil, 0
	}
	trailer := data[len(data)-trailerLen:]
	if string(trailer[4:]) != trailerMagic {
		return nil, 0
	}
	footerLen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	footerEnd := int64(len(data) - trailerLen)
	if footerLen > footerEnd-headerLen {
		return nil, 0
	}
	a = &Archive{data: data}
	if err := a.decodeFooter(data[footerEnd-footerLen : footerEnd]); err != nil {
		return nil, 0
	}
	return a, footerEnd - footerLen
}

// salvageIndexed keeps every indexed segment that passes the same
// bounds and CRC checks Open applies, plus a record-decode validation
// (Open defers that to Records; salvage must not hand back a segment
// it cannot decode).
func salvageIndexed(data []byte, a *Archive, bodyEnd int64) *SalvageResult {
	res := &SalvageResult{Meta: a.meta, Summary: a.summary}
	res.Report.FooterIntact = true
	res.Report.SegmentsTotal = len(a.segments)
	for i, s := range a.segments {
		if s.offset < headerLen || s.length < 0 || s.length > maxSegment || s.offset+s.length > bodyEnd {
			res.Report.LostSegments = append(res.Report.LostSegments, i)
			continue
		}
		payload := data[s.offset : s.offset+s.length]
		if crc32.Checksum(payload, castagnoli) != s.crc {
			res.Report.LostSegments = append(res.Report.LostSegments, i)
			res.Report.BytesDropped += s.length
			continue
		}
		recs, err := appendPayloadRecords(make([]*trace.ProfileRecord, 0, segCapHint(s)), payload, i)
		if err != nil {
			res.Report.LostSegments = append(res.Report.LostSegments, i)
			res.Report.BytesDropped += s.length
			continue
		}
		res.Records = append(res.Records, recs...)
		res.Report.SegmentsKept++
	}
	res.Report.RecordsKept = int64(len(res.Records))
	return res
}

// salvageScan re-discovers segments without an index by walking the
// u32-length framing from the top of the body. There are no CRCs to
// consult, so each candidate is validated by fully decoding its
// records; the first frame that fails ends the scan (the bytes after
// it may be a damaged segment, the footer's debris, or garbage — none
// distinguishable without the index).
func salvageScan(data []byte) *SalvageResult {
	res := &SalvageResult{}
	pos := headerLen
	for idx := 0; ; idx++ {
		if pos+4 > len(data) {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		if n == 0 || n > maxSegment || n > len(data)-pos-4 {
			break
		}
		recs, err := appendPayloadRecords(nil, data[pos+4:pos+4+n], idx)
		if err != nil {
			break
		}
		res.Records = append(res.Records, recs...)
		res.Report.SegmentsKept++
		pos += 4 + n
	}
	res.Report.SegmentsTotal = res.Report.SegmentsKept
	res.Report.RecordsKept = int64(len(res.Records))
	res.Report.BytesDropped = int64(len(data) - pos)
	return res
}

// Rebuild re-archives a salvage result into a fresh, fully valid blob
// under meta (pass res.Meta when the footer survived). The summary is
// dropped: it described the whole run, and after a lossy salvage it
// would claim phases the surviving records may not contain — callers
// re-analyze if they need one.
func Rebuild(meta Meta, res *SalvageResult) []byte {
	w := NewWriter(meta)
	for _, rec := range res.Records {
		w.Add(rec)
	}
	var sum *Summary
	if res.Summary != nil && res.Report.Lossless() {
		sum = res.Summary
	}
	return w.Finalize(sum)
}
