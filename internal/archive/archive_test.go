package archive

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core/analyzer"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// synthRecords builds n profile windows over a two-regime synthetic
// run: the first half is "warmup" dominated by infeed, the second half
// is "train" dominated by matmul — enough structure for OLS to find
// more than one phase.
func synthRecords(n int) []*trace.ProfileRecord {
	recs := make([]*trace.ProfileRecord, 0, n)
	var t simclock.Time
	for i := 0; i < n; i++ {
		step := int64(i)
		var events []trace.Event
		if i < n/2 {
			events = []trace.Event{
				{Name: "InfeedDequeue", Device: trace.Host, Start: t, Dur: 900, Step: step},
				{Name: "Preprocess", Device: trace.Host, Start: t + 100, Dur: 400, Step: step},
				{Name: "MatMul", Device: trace.TPU, Start: t + 500, Dur: 200, Step: step},
			}
		} else {
			events = []trace.Event{
				{Name: "MatMul", Device: trace.TPU, Start: t, Dur: 800, Step: step},
				{Name: "CrossReplicaSum", Device: trace.TPU, Start: t + 800, Dur: 150, Step: step},
				{Name: "InfeedDequeue", Device: trace.Host, Start: t + 50, Dur: 100, Step: step},
			}
		}
		idle := 0.1 + 0.01*float64(i%7)
		mxu := 0.3 + 0.02*float64(i%5)
		recs = append(recs, trace.Reduce(int64(i), t, events, idle, mxu))
		t += 1000
	}
	return recs
}

func testMeta() Meta {
	return Meta{
		RunID:      "run-a",
		Workload:   "synthetic",
		Label:      "baseline",
		HostSpec:   "cores=8",
		TPUVersion: "v2",
		CreatedSeq: 7,
	}
}

func buildArchive(t *testing.T, recs []*trace.ProfileRecord, segTarget int) []byte {
	t.Helper()
	rep, err := analyzer.Analyze("synthetic", recs, analyzer.OLSAlgo, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(testMeta())
	w.SetSegmentTarget(segTarget)
	for _, r := range recs {
		w.Add(r)
	}
	return w.Finalize(SummarizeReport(rep))
}

func TestRoundTrip(t *testing.T) {
	recs := synthRecords(40)
	gap := &trace.ProfileRecord{Seq: 99, Gap: true}
	recs = append(recs, gap)
	// Tiny segment target forces many segments — exercises the index.
	blob := buildArchive(t, recs, 256)

	a, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Meta(); got != testMeta() {
		t.Fatalf("meta = %+v", got)
	}
	if a.RecordCount() != 41 {
		t.Fatalf("records = %d", a.RecordCount())
	}
	if a.WindowCount() != 40 {
		t.Fatalf("windows = %d (gap must not count)", a.WindowCount())
	}
	first, last := a.TimeRange()
	if first != 0 || last == 0 {
		t.Fatalf("time range = [%d, %d]", first, last)
	}
	if a.Summary() == nil || len(a.Summary().Phases) == 0 {
		t.Fatal("summary missing or empty")
	}

	got, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want := trace.MarshalRecord(recs[i])
		have := trace.MarshalRecord(got[i])
		if !bytes.Equal(want, have) {
			t.Fatalf("record %d changed across round trip", i)
		}
	}
}

// TestRoundTripDeterministic is the acceptance-criteria test: archive
// encode → decode → re-analyze reproduces the embedded phase summary
// bit-identically.
func TestRoundTripDeterministic(t *testing.T) {
	recs := synthRecords(60)
	rep, err := analyzer.Analyze("synthetic", recs, analyzer.OLSAlgo, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	original := SummarizeReport(rep)

	w := NewWriter(testMeta())
	for _, r := range recs {
		w.Add(r)
	}
	blob := w.Finalize(original)

	a, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := analyzer.Analyze("synthetic", decoded, analyzer.OLSAlgo, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reanalyzed := SummarizeReport(rep2)

	origBytes := MarshalSummary(original)
	if !bytes.Equal(origBytes, MarshalSummary(a.Summary())) {
		t.Fatal("embedded summary differs from original")
	}
	if !bytes.Equal(origBytes, MarshalSummary(reanalyzed)) {
		t.Fatal("re-analysis of decoded records differs from original summary")
	}
}

func TestAddRawMatchesAdd(t *testing.T) {
	recs := synthRecords(10)
	w1 := NewWriter(testMeta())
	w2 := NewWriter(testMeta())
	for _, r := range recs {
		w1.Add(r)
		if err := w2.AddRaw(trace.MarshalRecord(r)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(w1.Finalize(nil), w2.Finalize(nil)) {
		t.Fatal("Add and AddRaw produced different archives")
	}
}

func TestAddRawRejectsMalformed(t *testing.T) {
	w := NewWriter(testMeta())
	if err := w.AddRaw([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("malformed record accepted")
	}
	if w.Records() != 0 {
		t.Fatal("rejected record was counted")
	}
}

func TestOpenCorruption(t *testing.T) {
	blob := buildArchive(t, synthRecords(30), 512)

	mutate := func(f func(b []byte) []byte) []byte {
		cp := make([]byte, len(blob))
		copy(cp, blob)
		return f(cp)
	}

	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"too short", []byte("TPAR\x01"), ErrTruncated},
		{"bad header magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"unknown version", mutate(func(b []byte) []byte { b[4] = 42; return b }), ErrVersion},
		{"bad trailer magic", mutate(func(b []byte) []byte { b[len(b)-1] = 'X'; return b }), ErrBadMagic},
		{"truncated footer", mutate(func(b []byte) []byte {
			// Drop bytes from the middle, keeping the trailer: the
			// declared footer length now exceeds what's present.
			cut := len(b) / 2
			return append(b[:cut], b[len(b)-trailerLen:]...)
		}), nil}, // any typed error is fine; must not panic
		{"segment bit flip", mutate(func(b []byte) []byte {
			b[headerLen+10] ^= 0x40 // inside the first segment payload
			return b
		}), ErrChecksum},
		{"footer garbage", mutate(func(b []byte) []byte {
			// Corrupt the footer's first tag byte (0x08, field 1
			// varint) into an unsupported wire type.
			footerLen := int(uint32(b[len(b)-8]) | uint32(b[len(b)-7])<<8 |
				uint32(b[len(b)-6])<<16 | uint32(b[len(b)-5])<<24)
			b[len(b)-trailerLen-footerLen] ^= 0xff
			return b
		}), ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := Open(tc.blob)
			if err == nil {
				t.Fatal("corrupt archive opened cleanly")
			}
			if a != nil {
				t.Fatal("non-nil archive with error")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			typed := false
			for _, e := range []error{ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum, ErrMalformed} {
				if errors.Is(err, e) {
					typed = true
				}
			}
			if !typed {
				t.Fatalf("untyped corruption error: %v", err)
			}
		})
	}
}

func TestOpenEmptyArchive(t *testing.T) {
	// Zero records is a legal archive (a run that produced nothing).
	w := NewWriter(testMeta())
	a, err := Open(w.Finalize(nil))
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordCount() != 0 || a.Summary() != nil {
		t.Fatalf("records=%d summary=%v", a.RecordCount(), a.Summary())
	}
	recs, err := a.Records()
	if err != nil || len(recs) != 0 {
		t.Fatalf("records = %v, %v", recs, err)
	}
}
