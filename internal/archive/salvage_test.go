package archive

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/trace"
)

// recordBytes flattens records to their wire form for comparison.
func recordBytes(t *testing.T, recs []*trace.ProfileRecord) [][]byte {
	t.Helper()
	out := make([][]byte, len(recs))
	for i, r := range recs {
		out[i] = trace.MarshalRecord(r)
	}
	return out
}

func sameRecords(t *testing.T, got, want []*trace.ProfileRecord) bool {
	t.Helper()
	g, w := recordBytes(t, got), recordBytes(t, want)
	if len(g) != len(w) {
		return false
	}
	for i := range g {
		if !bytes.Equal(g[i], w[i]) {
			return false
		}
	}
	return true
}

func TestSalvageLossless(t *testing.T) {
	recs := synthRecords(40)
	blob := buildArchive(t, recs, 512)
	res, err := Salvage(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Lossless() {
		t.Fatalf("report = %+v, want lossless", res.Report)
	}
	if res.Meta != testMeta() {
		t.Fatalf("meta = %+v", res.Meta)
	}
	if res.Summary == nil {
		t.Fatal("summary lost on an intact blob")
	}
	a, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(t, res.Records, want) {
		t.Fatal("salvage of an intact blob differs from Open+Records")
	}
	if res.Report.SegmentsKept != res.Report.SegmentsTotal || res.Report.BytesDropped != 0 {
		t.Fatalf("report = %+v", res.Report)
	}
}

// TestSalvageFlippedByte: one corrupted segment costs exactly that
// segment — and no record from it may leak into the result.
func TestSalvageFlippedByte(t *testing.T) {
	recs := synthRecords(40)
	blob := buildArchive(t, recs, 512)
	a, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.segments) < 2 {
		t.Fatalf("need multiple segments, got %d", len(a.segments))
	}
	s0 := a.segments[0]
	cp := append([]byte(nil), blob...)
	cp[s0.offset+s0.length/2] ^= 0x01
	if _, err := Open(cp); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Open should fail the flipped blob with ErrChecksum, got %v", err)
	}

	res, err := Salvage(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.FooterIntact {
		t.Fatal("footer should survive a body flip")
	}
	if len(res.Report.LostSegments) != 1 || res.Report.LostSegments[0] != 0 {
		t.Fatalf("LostSegments = %v, want [0]", res.Report.LostSegments)
	}
	all, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(t, res.Records, all[s0.records:]) {
		t.Fatal("salvage must return exactly the records outside the corrupt segment")
	}
	if res.Report.BytesDropped != s0.length {
		t.Fatalf("BytesDropped = %d, want %d", res.Report.BytesDropped, s0.length)
	}
	if res.Meta != testMeta() {
		t.Fatalf("meta = %+v", res.Meta)
	}
}

// TestSalvageTruncatedTail: the trailer and footer are gone and the
// last segment is torn — everything before it comes back via the scan.
func TestSalvageTruncatedTail(t *testing.T) {
	recs := synthRecords(40)
	blob := buildArchive(t, recs, 512)
	a, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	last := a.segments[len(a.segments)-1]
	cut := last.offset + last.length/2 // mid-final-segment: footer lost, tail torn
	torn := blob[:cut]
	if _, err := Open(torn); err == nil {
		t.Fatal("Open should reject the torn blob")
	}

	res, err := Salvage(torn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.FooterIntact {
		t.Fatal("footer cannot be intact on a torn tail")
	}
	all, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	wantKept := int64(0)
	for _, s := range a.segments[:len(a.segments)-1] {
		wantKept += s.records
	}
	if !sameRecords(t, res.Records, all[:wantKept]) {
		t.Fatalf("recovered %d records, want the %d before the torn segment",
			len(res.Records), wantKept)
	}
	if res.Report.SegmentsKept != len(a.segments)-1 {
		t.Fatalf("SegmentsKept = %d, want %d", res.Report.SegmentsKept, len(a.segments)-1)
	}
}

// TestSalvageMissingFooter: body fully intact, index gone — the scan
// recovers every record (metadata is unrecoverable by design).
func TestSalvageMissingFooter(t *testing.T) {
	recs := synthRecords(40)
	blob := buildArchive(t, recs, 512)
	a, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	last := a.segments[len(a.segments)-1]
	bodyOnly := blob[:last.offset+last.length]

	res, err := Salvage(bodyOnly)
	if err != nil {
		t.Fatal(err)
	}
	all, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(t, res.Records, all) {
		t.Fatalf("recovered %d records, want all %d", len(res.Records), len(all))
	}
	if res.Meta != (Meta{}) || res.Summary != nil {
		t.Fatal("metadata cannot survive a lost footer")
	}
}

// TestSalvageCorruptionTable mirrors TestOpenCorruption: every blob
// Open rejects must salvage without panicking, and the rows where data
// is recoverable must recover it.
func TestSalvageCorruptionTable(t *testing.T) {
	recs := synthRecords(30)
	blob := buildArchive(t, recs, 512)
	a, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	total, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		cp := make([]byte, len(blob))
		copy(cp, blob)
		return f(cp)
	}

	cases := []struct {
		name     string
		blob     []byte
		wantErr  error // non-nil: Salvage itself must fail with this
		minRecs  int   // else: at least this many records recovered
		wantMeta bool
	}{
		{"empty", nil, ErrTruncated, 0, false},
		{"bad header magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic, 0, false},
		{"unknown version", mutate(func(b []byte) []byte { b[4] = 42; return b }), ErrVersion, 0, false},
		{"bad trailer magic", mutate(func(b []byte) []byte { b[len(b)-1] = 'X'; return b }),
			nil, len(total), false},
		{"truncated footer", mutate(func(b []byte) []byte {
			cut := len(b) / 2
			return append(b[:cut], b[len(b)-trailerLen:]...)
		}), nil, 0, false},
		{"segment bit flip", mutate(func(b []byte) []byte {
			b[headerLen+10] ^= 0x40
			return b
		}), nil, len(total) - int(a.segments[0].records), true},
		{"footer garbage", mutate(func(b []byte) []byte {
			footerLen := int(uint32(b[len(b)-8]) | uint32(b[len(b)-7])<<8 |
				uint32(b[len(b)-6])<<16 | uint32(b[len(b)-5])<<24)
			b[len(b)-trailerLen-footerLen] ^= 0xff
			return b
		}), nil, len(total), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Salvage(tc.blob)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("salvage failed: %v", err)
			}
			if len(res.Records) < tc.minRecs {
				t.Fatalf("recovered %d records, want >= %d", len(res.Records), tc.minRecs)
			}
			if tc.wantMeta && res.Meta != testMeta() {
				t.Fatalf("meta = %+v", res.Meta)
			}
			if int64(len(res.Records)) != res.Report.RecordsKept {
				t.Fatalf("RecordsKept = %d, records = %d", res.Report.RecordsKept, len(res.Records))
			}
		})
	}
}

func TestSalvageDeterministic(t *testing.T) {
	blob := buildArchive(t, synthRecords(30), 512)
	torn := blob[:len(blob)*2/3]
	a, err := Salvage(torn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Salvage(torn)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(t, a.Records, b.Records) {
		t.Fatal("salvage is not deterministic")
	}
	if renderReport(a.Report) != renderReport(b.Report) {
		t.Fatalf("reports differ: %+v vs %+v", a.Report, b.Report)
	}
}

// renderReport flattens a report (slice field included) so reports can
// be compared as values.
func renderReport(rep SalvageReport) string {
	return fmt.Sprintf("%+v", rep)
}

// TestRebuildRoundTrip: a salvaged run re-archives into a blob Open
// fully verifies, preserving the recovered records.
func TestRebuildRoundTrip(t *testing.T) {
	recs := synthRecords(40)
	blob := buildArchive(t, recs, 512)
	a, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	last := a.segments[len(a.segments)-1]
	res, err := Salvage(blob[:last.offset+last.length/2])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("nothing salvaged")
	}
	rebuilt := Rebuild(testMeta(), res)
	ra, err := Open(rebuilt)
	if err != nil {
		t.Fatalf("rebuilt blob does not verify: %v", err)
	}
	if ra.Meta() != testMeta() {
		t.Fatalf("meta = %+v", ra.Meta())
	}
	got, err := ra.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(t, got, res.Records) {
		t.Fatal("rebuild lost records")
	}
	if ra.Summary() != nil {
		t.Fatal("lossy rebuild must not carry the stale summary")
	}

	// A lossless salvage keeps the summary through rebuild.
	full, err := Salvage(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fa, err := Open(Rebuild(full.Meta, full)); err != nil {
		t.Fatal(err)
	} else if fa.Summary() == nil {
		t.Fatal("lossless rebuild dropped the summary")
	}
}
