package archive

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// diffWorkers is the fan-out matrix every differential case runs:
// serial reference, a fixed multi-worker point, and whatever this
// machine's GOMAXPROCS is.
func diffWorkers() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// diffSizes is the record-count sweep: empty, single, and the two
// bench scales.
var diffSizes = []int{0, 1, 1_000, 10_000}

// rawBlob writes n synthetic records into an archive without a summary
// (decode differentials don't need the analyzer) using a segment target
// small enough that every size above 0 produces multiple segments.
func rawBlob(t *testing.T, recs []*trace.ProfileRecord) []byte {
	t.Helper()
	w := NewWriter(testMeta())
	if err := w.SetSegmentTarget(2048); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		w.Add(r)
	}
	return w.Finalize(nil)
}

// TestDecodeDifferential proves the parallel open/decode paths are
// result-identical to the serial ones, for every (n, workers) pair:
// same records (struct-deep), same Iter stream, same serial reference.
func TestDecodeDifferential(t *testing.T) {
	for _, n := range diffSizes {
		recs := synthRecords(n)
		blob := rawBlob(t, recs)

		ref, err := OpenWorkers(blob, 1)
		if err != nil {
			t.Fatalf("n=%d: serial open: %v", n, err)
		}
		want, err := ref.RecordsWorkers(1)
		if err != nil {
			t.Fatalf("n=%d: serial decode: %v", n, err)
		}
		if len(want) != n {
			t.Fatalf("n=%d: serial decoded %d records", n, len(want))
		}

		for _, w := range diffWorkers() {
			a, err := OpenWorkers(blob, w)
			if err != nil {
				t.Fatalf("n=%d workers=%d: open: %v", n, w, err)
			}
			got, err := a.RecordsWorkers(w)
			if err != nil {
				t.Fatalf("n=%d workers=%d: decode: %v", n, w, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d workers=%d: parallel decode differs from serial", n, w)
			}

			var streamed []*trace.ProfileRecord
			it := a.Iter()
			for it.Next() {
				streamed = append(streamed, it.Record())
			}
			if err := it.Err(); err != nil {
				t.Fatalf("n=%d workers=%d: iter: %v", n, w, err)
			}
			if len(streamed) != len(want) {
				t.Fatalf("n=%d: iter streamed %d records, want %d", n, len(streamed), len(want))
			}
			if n > 0 && !reflect.DeepEqual(streamed, want) {
				t.Fatalf("n=%d: iter stream differs from serial decode", n)
			}
		}
	}
}

// TestOpenCorruptSegmentDifferential flips a byte inside the middle
// segment and asserts every worker count reports the identical typed
// checksum failure — and that no archive (hence no partial records)
// escapes.
func TestOpenCorruptSegmentDifferential(t *testing.T) {
	for _, n := range []int{1_000, 10_000} {
		blob := rawBlob(t, synthRecords(n))
		good, err := Open(blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(good.segments) < 3 {
			t.Fatalf("n=%d: want >=3 segments, got %d", n, len(good.segments))
		}
		mid := good.segments[len(good.segments)/2]
		bad := append([]byte(nil), blob...)
		bad[mid.offset+mid.length/2] ^= 0xff

		serialErr := func() error {
			a, err := OpenWorkers(bad, 1)
			if a != nil {
				t.Fatalf("n=%d: serial open of corrupt blob returned an archive", n)
			}
			return err
		}()
		if !errors.Is(serialErr, ErrChecksum) {
			t.Fatalf("n=%d: serial error = %v, want ErrChecksum", n, serialErr)
		}
		for _, w := range diffWorkers() {
			a, err := OpenWorkers(bad, w)
			if a != nil {
				t.Fatalf("n=%d workers=%d: corrupt open returned an archive", n, w)
			}
			if !errors.Is(err, ErrChecksum) {
				t.Fatalf("n=%d workers=%d: error = %v, want ErrChecksum", n, w, err)
			}
			if err.Error() != serialErr.Error() {
				t.Fatalf("n=%d workers=%d: error %q differs from serial %q", n, w, err, serialErr)
			}
		}
	}
}

// TestDecodeMalformedRecordDifferential plants a record that passes the
// CRC (it is written through the writer, so the checksum covers it) but
// fails wire decode, and asserts serial, parallel, and streaming decode
// all fail with the identical typed error and leak no records.
func TestDecodeMalformedRecordDifferential(t *testing.T) {
	w := NewWriter(testMeta())
	if err := w.SetSegmentTarget(512); err != nil {
		t.Fatal(err)
	}
	recs := synthRecords(40)
	for _, r := range recs[:20] {
		w.Add(r)
	}
	// A field-0 tag is invalid protobuf wire data; UnmarshalRecord must
	// reject it. addBytes frames it like any record, so the segment CRC
	// is consistent and only decode can catch it.
	w.addBytes([]byte{0x00, 0x01}, &trace.ProfileRecord{})
	for _, r := range recs[20:] {
		w.Add(r)
	}
	blob := w.Finalize(nil)

	a, err := Open(blob)
	if err != nil {
		t.Fatalf("open: %v (CRC must pass; corruption is inside a record)", err)
	}
	_, serialErr := a.RecordsWorkers(1)
	if !errors.Is(serialErr, ErrMalformed) {
		t.Fatalf("serial decode error = %v, want ErrMalformed", serialErr)
	}
	for _, workers := range diffWorkers() {
		got, err := a.RecordsWorkers(workers)
		if got != nil {
			t.Fatalf("workers=%d: malformed decode leaked %d records", workers, len(got))
		}
		if err == nil || err.Error() != serialErr.Error() {
			t.Fatalf("workers=%d: error %q differs from serial %q", workers, err, serialErr)
		}
	}
	it := a.Iter()
	for it.Next() {
	}
	if err := it.Err(); err == nil || err.Error() != serialErr.Error() {
		t.Fatalf("iter error %q differs from serial %q", it.Err(), serialErr)
	}
}

// TestAddBatchBitIdentical proves batch (parallel) encode produces the
// exact bytes of the serial Add loop, for every worker count and for
// batches mixed with single Adds.
func TestAddBatchBitIdentical(t *testing.T) {
	for _, n := range []int{1, 1_000, 10_000} {
		recs := synthRecords(n)
		want := rawBlob(t, recs)

		for _, workers := range diffWorkers() {
			w := NewWriter(testMeta())
			if err := w.SetSegmentTarget(2048); err != nil {
				t.Fatal(err)
			}
			w.SetParallelism(workers)
			if err := w.AddBatch(recs); err != nil {
				t.Fatalf("n=%d workers=%d: AddBatch: %v", n, workers, err)
			}
			if got := w.Finalize(nil); !bytes.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: AddBatch blob differs from serial Add", n, workers)
			}
		}

		// Interleaved single Adds and split batches must land on the
		// same byte stream too.
		w := NewWriter(testMeta())
		if err := w.SetSegmentTarget(2048); err != nil {
			t.Fatal(err)
		}
		w.SetParallelism(4)
		split := n / 3
		w.Add(recs[0])
		if err := w.AddBatch(recs[1 : 1+split]); err != nil {
			t.Fatal(err)
		}
		if err := w.AddBatch(recs[1+split:]); err != nil {
			t.Fatal(err)
		}
		if got := w.Finalize(nil); !bytes.Equal(got, want) {
			t.Fatalf("n=%d: mixed Add/AddBatch blob differs from serial Add", n)
		}
	}
}

// TestWriterDecodeRecords checks the finalize-time decode of the
// writer's own stream: every record added (flushed segments and the
// unflushed tail alike) comes back struct-identical, before Finalize.
func TestWriterDecodeRecords(t *testing.T) {
	recs := synthRecords(300)
	w := NewWriter(testMeta())
	if err := w.SetSegmentTarget(1024); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		w.Add(r)
	}
	got, err := w.DecodeRecords()
	if err != nil {
		t.Fatal(err)
	}
	want, err := mustOpenRecords(rawBlob(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("writer DecodeRecords differs from archive decode")
	}
}

func mustOpenRecords(blob []byte) ([]*trace.ProfileRecord, error) {
	a, err := Open(blob)
	if err != nil {
		return nil, err
	}
	return a.Records()
}

// TestSetSegmentTarget covers the clamp: non-positive and over-limit
// targets are rejected with the typed error and leave the writer's
// target untouched.
func TestSetSegmentTarget(t *testing.T) {
	w := NewWriter(testMeta())
	for _, bad := range []int{0, -1, -32 << 10, maxSegment + 1} {
		if err := w.SetSegmentTarget(bad); !errors.Is(err, ErrSegmentTarget) {
			t.Fatalf("SetSegmentTarget(%d) = %v, want ErrSegmentTarget", bad, err)
		}
		if w.segTarget != DefaultSegmentTarget {
			t.Fatalf("SetSegmentTarget(%d) mutated target to %d", bad, w.segTarget)
		}
	}
	for _, good := range []int{1, 4096, maxSegment} {
		if err := w.SetSegmentTarget(good); err != nil {
			t.Fatalf("SetSegmentTarget(%d) = %v, want nil", good, err)
		}
		if w.segTarget != good {
			t.Fatalf("SetSegmentTarget(%d) left target %d", good, w.segTarget)
		}
	}
}
