// Package archive defines the on-bucket profile archive format: the
// durable unit of the run repository (internal/repo).
//
// One archive captures one profiling run — every ProfileRecord the
// profiler produced plus an embedded analyzer summary — in a single
// blob a storage bucket can hold. The paper's evaluation is entirely
// cross-run (phase structure of BERT vs DCGAN, TPUv2 vs TPUv3, Tables
// II-IV); a compact self-describing archive is what makes those
// comparisons possible after the profiling process is gone.
//
// Layout (all integers little-endian):
//
//	magic "TPAR" | version u8
//	repeated segment: u32 payloadLen | payload
//	footer (protobuf wire, see below)
//	u32 footerLen | magic "TPAF"
//
// A segment payload is a concatenation of (uvarint recordLen,
// recordBytes) pairs, where recordBytes is trace.MarshalRecord output —
// the exact wire encoding the RPC layer ships, so records move between
// live streams and archives without re-encoding. The footer indexes
// every segment with its offset, length, CRC32C (Castagnoli, the GCS
// object checksum), and record count, and carries aggregate counts, the
// covered time range, run metadata, and the analyzer summary. Readers
// trust nothing: magic, version, bounds, and every segment checksum are
// verified before any record is decoded, and all failures are typed
// (ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum, ErrMalformed) —
// never a panic, however corrupt the input (see FuzzOpen).
//
// Footer message schema (protobuf field numbers):
//
//	message Footer {
//	  uint64 version = 1;
//	  repeated Segment segments = 2;
//	  uint64 record_count = 3;
//	  uint64 window_count = 4;   // non-gap records
//	  uint64 time_first = 5;
//	  uint64 time_last = 6;
//	  Summary summary = 7;
//	  Meta meta = 8;
//	}
//	message Segment { uint64 offset = 1; uint64 length = 2;
//	                  uint64 crc32c = 3; uint64 records = 4; }
//	message Meta { string run_id = 1; string workload = 2;
//	               string label = 3; string host_spec = 4;
//	               string tpu_version = 5; uint64 created_seq = 6; }
//	message Summary { string workload = 1; string algorithm = 2;
//	                  uint64 steps = 3; double idle_frac = 4;
//	                  double mxu_util = 5; double coverage_top3 = 6;
//	                  uint64 total_time = 7; repeated PhaseSummary phases = 8; }
//	message PhaseSummary { sint64 id = 1; uint64 steps = 2;
//	                       uint64 start = 3; uint64 end = 4;
//	                       uint64 total = 5; double idle_frac = 6;
//	                       double mxu_util = 7; repeated Op ops = 8; }
//	message Op { string name = 1; uint64 device = 2;
//	             uint64 count = 3; uint64 total = 4; }
package archive

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/core/analyzer"
	"repro/internal/parallel"
	"repro/internal/protowire"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Format constants.
const (
	// Version is the current archive format version.
	Version = 1

	headerMagic  = "TPAR"
	trailerMagic = "TPAF"
	headerLen    = 5 // magic + version byte
	trailerLen   = 8 // u32 footerLen + magic

	// DefaultSegmentTarget is the payload size at which the writer cuts
	// a new segment. Small enough that one flipped bit invalidates one
	// segment, not the whole run; large enough that the per-segment
	// index stays negligible.
	DefaultSegmentTarget = 32 << 10

	// maxSegment bounds a single segment on read — anything larger is
	// corruption, not data (writers cut at DefaultSegmentTarget plus at
	// most one record, and records are bounded by the profile window).
	maxSegment = 256 << 20
)

// Typed corruption errors. Open wraps these so callers can classify
// failures with errors.Is.
var (
	ErrBadMagic  = errors.New("archive: bad magic")
	ErrVersion   = errors.New("archive: unsupported version")
	ErrTruncated = errors.New("archive: truncated")
	ErrChecksum  = errors.New("archive: segment checksum mismatch")
	ErrMalformed = errors.New("archive: malformed")
)

// ErrSegmentTarget rejects out-of-range Writer.SetSegmentTarget values.
var ErrSegmentTarget = errors.New("archive: segment target out of range")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta identifies a run: how the repository indexes archives.
type Meta struct {
	RunID      string
	Workload   string
	Label      string // free-form experiment tag
	HostSpec   string // rendered host.Spec the run used
	TPUVersion string
	CreatedSeq uint64 // repository-issued logical creation order
	Tenant     string // owning tenant in multi-tenant cluster runs
}

// OpSummary is one operator's aggregate within a phase.
type OpSummary struct {
	Name   string
	Device trace.Device
	Count  int64
	Total  simclock.Duration
}

// PhaseSummary is the compact form of one analyzer phase: enough to
// diff phase structure across runs without re-running the analyzer.
type PhaseSummary struct {
	ID       int
	Steps    int64
	Start    simclock.Time
	End      simclock.Time
	Total    simclock.Duration
	IdleFrac float64
	MXUUtil  float64
	Ops      []OpSummary // top ops per device, duration-descending
}

// Summary is the embedded analyzer result: phases, top-op breakdowns,
// and the idle/MXU aggregates the paper tabulates.
type Summary struct {
	Workload     string
	Algorithm    string
	Steps        int64
	IdleFrac     float64
	MXUUtil      float64
	CoverageTop3 float64
	TotalTime    simclock.Duration
	Phases       []PhaseSummary
}

// SummaryTopOps is how many operators per device a phase summary keeps —
// the paper's Table II depth.
const SummaryTopOps = 5

// SummarizeReport compacts an analyzer report into the archivable
// summary. The conversion is deterministic: phases keep the analyzer's
// order, ops come from trace.TopOps (duration-descending, name
// tie-break), and phase idle/MXU are duration-weighted step averages —
// so re-analyzing the same records always reproduces identical bytes
// (see TestRoundTripDeterministic).
func SummarizeReport(rep *analyzer.Report) *Summary {
	s := &Summary{
		Workload:     rep.Workload,
		Algorithm:    string(rep.Algorithm),
		Steps:        int64(rep.Steps),
		IdleFrac:     rep.IdleFrac,
		MXUUtil:      rep.MXUUtil,
		CoverageTop3: rep.CoverageTop3,
		TotalTime:    rep.TotalTime,
	}
	for _, p := range rep.Phases {
		ps := PhaseSummary{
			ID:    p.ID,
			Steps: int64(len(p.Steps)),
			Start: p.Start,
			End:   p.End,
			Total: p.Total,
		}
		var span float64
		for _, st := range p.Steps {
			d := float64(st.End.Sub(st.Start))
			span += d
			ps.IdleFrac += st.IdleFrac * d
			ps.MXUUtil += st.MXUUtil * d
		}
		if span > 0 {
			ps.IdleFrac /= span
			ps.MXUUtil /= span
		}
		for _, dev := range []trace.Device{trace.Host, trace.TPU} {
			for _, op := range p.TopOps(dev, SummaryTopOps) {
				ps.Ops = append(ps.Ops, OpSummary{
					Name: op.Name, Device: op.Device,
					Count: op.Count, Total: op.Total,
				})
			}
		}
		s.Phases = append(s.Phases, ps)
	}
	return s
}

// segment is one indexed run of records inside the archive body.
type segment struct {
	offset  int64 // payload start within the archive blob
	length  int64
	crc     uint32
	records int64
}

// Writer accumulates records into archive bytes. Not safe for
// concurrent use; the fleet server serializes per-session appends.
type Writer struct {
	meta      Meta
	segTarget int
	workers   int // AddBatch marshal fan-out (0 = GOMAXPROCS)

	body     []byte // header + flushed segments
	cur      []byte // unflushed segment payload
	curRecs  int64
	segments []segment

	recordCount int64
	windowCount int64
	haveTime    bool
	tsFirst     simclock.Time
	tsLast      simclock.Time
}

// NewWriter starts an archive for the given run metadata.
func NewWriter(meta Meta) *Writer {
	w := &Writer{meta: meta, segTarget: DefaultSegmentTarget}
	w.body = append(w.body, headerMagic...)
	w.body = append(w.body, Version)
	return w
}

// SetSegmentTarget overrides the segment cut size. Targets outside
// [1, maxSegment] are rejected with ErrSegmentTarget and the current
// target is kept: a non-positive target would make the writer cut a
// segment per record (or never), and anything above maxSegment would
// produce archives Open rejects as corrupt.
func (w *Writer) SetSegmentTarget(n int) error {
	if n < 1 || n > maxSegment {
		return fmt.Errorf("%w: %d (want 1..%d)", ErrSegmentTarget, n, maxSegment)
	}
	w.segTarget = n
	return nil
}

// SetParallelism bounds the marshal fan-out AddBatch uses
// (0 = GOMAXPROCS, 1 = serial). Output bytes are identical for any
// value.
func (w *Writer) SetParallelism(n int) { w.workers = n }

// Add appends one record.
func (w *Writer) Add(rec *trace.ProfileRecord) {
	w.addBytes(trace.MarshalRecord(rec), rec)
}

// batchEncodeChunk is the fixed AddBatch chunk size. Like every
// internal/parallel fan-out, the boundaries depend only on the input
// length — never on the worker count — so the archive bytes are
// bit-identical however many workers marshal.
const batchEncodeChunk = 256

// AddBatch appends a batch of records, marshalling them in parallel.
// The encoded chunks are merged into the segment stream in input order,
// so the resulting archive is byte-identical to calling Add in a loop
// (see TestAddBatchBitIdentical); only the wall-clock cost of the
// marshal fan-out changes.
func (w *Writer) AddBatch(recs []*trace.ProfileRecord) error {
	if len(recs) == 0 {
		return nil
	}
	type chunk struct {
		buf  []byte
		ends []int // cumulative record end offsets within buf
	}
	pool := parallel.New(w.workers)
	chunks, err := parallel.Map(pool, context.Background(), len(recs), batchEncodeChunk,
		func(ci, lo, hi int) (chunk, error) {
			var c chunk
			c.ends = make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				c.buf = trace.MarshalRecordAppend(c.buf, recs[i])
				c.ends = append(c.ends, len(c.buf))
			}
			return c, nil
		})
	if err != nil {
		return err
	}
	i := 0
	for _, c := range chunks {
		start := 0
		for _, end := range c.ends {
			w.addBytes(c.buf[start:end], recs[i])
			start = end
			i++
		}
	}
	return nil
}

// AddRaw appends an already wire-encoded record (the form the fleet
// endpoint receives). The bytes are decoded once to validate them and
// update the archive's counts; malformed input is rejected rather than
// poisoning the archive.
func (w *Writer) AddRaw(b []byte) error {
	rec, err := trace.UnmarshalRecord(b)
	if err != nil {
		return fmt.Errorf("archive: reject record: %w", err)
	}
	w.addBytes(b, rec)
	return nil
}

// AddRawBatch appends every record in a trace framed stream ((uvarint
// length, record bytes)*), returning how many landed. The whole batch is
// validated before any byte reaches the archive, so a malformed frame
// rejects the batch atomically — no partial batch to reconcile.
func (w *Writer) AddRawBatch(framed []byte) (int, error) {
	frames, err := trace.SplitFramed(framed)
	if err != nil {
		return 0, fmt.Errorf("archive: reject batch: %w", err)
	}
	recs := make([]*trace.ProfileRecord, len(frames))
	for i, fr := range frames {
		rec, err := trace.UnmarshalRecord(fr)
		if err != nil {
			return 0, fmt.Errorf("archive: reject record: %w", err)
		}
		recs[i] = rec
	}
	for i, fr := range frames {
		w.addBytes(fr, recs[i])
	}
	return len(frames), nil
}

func (w *Writer) addBytes(b []byte, rec *trace.ProfileRecord) {
	w.cur = binary.AppendUvarint(w.cur, uint64(len(b)))
	w.cur = append(w.cur, b...)
	w.curRecs++
	w.recordCount++
	if !rec.Gap {
		w.windowCount++
	}
	if rec.WindowEnd > 0 {
		if !w.haveTime || rec.WindowStart < w.tsFirst {
			w.tsFirst = rec.WindowStart
		}
		if rec.WindowEnd > w.tsLast {
			w.tsLast = rec.WindowEnd
		}
		w.haveTime = true
	}
	if len(w.cur) >= w.segTarget {
		w.flush()
	}
}

func (w *Writer) flush() {
	if len(w.cur) == 0 {
		return
	}
	var lenPrefix [4]byte
	binary.LittleEndian.PutUint32(lenPrefix[:], uint32(len(w.cur)))
	w.body = append(w.body, lenPrefix[:]...)
	w.segments = append(w.segments, segment{
		offset:  int64(len(w.body)),
		length:  int64(len(w.cur)),
		crc:     crc32.Checksum(w.cur, castagnoli),
		records: w.curRecs,
	})
	w.body = append(w.body, w.cur...)
	w.cur = w.cur[:0]
	w.curRecs = 0
}

// Records reports how many records have been added so far.
func (w *Writer) Records() int64 { return w.recordCount }

// DecodeRecords decodes every record added so far, in arrival order,
// from the writer's own encoded stream. This is the finalize-time
// analysis path: a long-lived collection session holds only the
// compact encoded bytes and decodes once at the end, instead of
// retaining a second, decoded copy of the whole run.
func (w *Writer) DecodeRecords() ([]*trace.ProfileRecord, error) {
	out := make([]*trace.ProfileRecord, 0, w.recordCount)
	pos := headerLen
	for seg := 0; pos < len(w.body); seg++ {
		if pos+4 > len(w.body) {
			return nil, fmt.Errorf("%w: writer segment %d header", ErrMalformed, seg)
		}
		n := int(binary.LittleEndian.Uint32(w.body[pos : pos+4]))
		pos += 4
		if n > len(w.body)-pos {
			return nil, fmt.Errorf("%w: writer segment %d bounds", ErrMalformed, seg)
		}
		var err error
		out, err = appendPayloadRecords(out, w.body[pos:pos+n], seg)
		if err != nil {
			return nil, err
		}
		pos += n
	}
	return appendPayloadRecords(out, w.cur, len(w.segments))
}

// Finalize flushes the last segment, appends the footer embedding sum
// (which may be nil for a summary-less capture), and returns the
// complete archive blob. The writer must not be used afterwards.
func (w *Writer) Finalize(sum *Summary) []byte {
	w.flush()
	footer := w.encodeFooter(sum)
	out := w.body
	out = append(out, footer...)
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint32(trailer[:4], uint32(len(footer)))
	copy(trailer[4:], trailerMagic)
	out = append(out, trailer[:]...)
	w.body = nil
	return out
}

func (w *Writer) encodeFooter(sum *Summary) []byte {
	e := protowire.NewEncoder(nil)
	e.Uint64(1, Version)
	for _, s := range w.segments {
		se := protowire.NewEncoder(nil)
		se.Uint64(1, uint64(s.offset))
		se.Uint64(2, uint64(s.length))
		se.Uint64(3, uint64(s.crc))
		se.Uint64(4, uint64(s.records))
		e.Raw(2, se.Bytes())
	}
	e.Uint64(3, uint64(w.recordCount))
	e.Uint64(4, uint64(w.windowCount))
	e.Uint64(5, uint64(w.tsFirst))
	e.Uint64(6, uint64(w.tsLast))
	if sum != nil {
		e.Raw(7, MarshalSummary(sum))
	}
	e.Raw(8, marshalMeta(w.meta))
	return e.Bytes()
}

// MarshalSummary encodes a summary to its canonical wire bytes.
// Exported because bit-identical summary bytes are the archive's
// determinism contract: the round-trip test compares these directly.
func MarshalSummary(s *Summary) []byte {
	e := protowire.NewEncoder(nil)
	e.String(1, s.Workload)
	e.String(2, s.Algorithm)
	e.Uint64(3, uint64(s.Steps))
	e.Double(4, s.IdleFrac)
	e.Double(5, s.MXUUtil)
	e.Double(6, s.CoverageTop3)
	e.Uint64(7, uint64(s.TotalTime))
	for _, p := range s.Phases {
		pe := protowire.NewEncoder(nil)
		pe.Int64(1, int64(p.ID))
		pe.Uint64(2, uint64(p.Steps))
		pe.Uint64(3, uint64(p.Start))
		pe.Uint64(4, uint64(p.End))
		pe.Uint64(5, uint64(p.Total))
		pe.Double(6, p.IdleFrac)
		pe.Double(7, p.MXUUtil)
		for _, op := range p.Ops {
			oe := protowire.NewEncoder(nil)
			oe.String(1, op.Name)
			oe.Uint64(2, uint64(op.Device))
			oe.Uint64(3, uint64(op.Count))
			oe.Uint64(4, uint64(op.Total))
			pe.Raw(8, oe.Bytes())
		}
		e.Raw(8, pe.Bytes())
	}
	return e.Bytes()
}

func marshalMeta(m Meta) []byte {
	e := protowire.NewEncoder(nil)
	e.String(1, m.RunID)
	e.String(2, m.Workload)
	e.String(3, m.Label)
	e.String(4, m.HostSpec)
	e.String(5, m.TPUVersion)
	e.Uint64(6, m.CreatedSeq)
	e.String(7, m.Tenant)
	return e.Bytes()
}

// Archive is a verified, opened archive blob.
type Archive struct {
	data     []byte
	meta     Meta
	summary  *Summary
	segments []segment

	recordCount int64
	windowCount int64
	tsFirst     simclock.Time
	tsLast      simclock.Time
}

// Open parses and fully verifies an archive blob: magic, version,
// trailer bounds, footer structure, and every segment's CRC32C. The
// returned Archive retains data (callers handing in a shared buffer
// should pass a copy — bucket reads already are copies). Segment
// verification fans out over all CPUs; OpenWorkers bounds it.
func Open(data []byte) (*Archive, error) { return OpenWorkers(data, 0) }

// OpenWorkers is Open with an explicit verification fan-out bound
// (0 = GOMAXPROCS, 1 = serial). Segments are independent by
// construction, so the parallel scan checks exactly what the serial
// one does; per-segment failures land in indexed slots and the
// lowest-indexed one is reported, so the returned error is identical
// for any worker count.
func OpenWorkers(data []byte, workers int) (*Archive, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:4]) != headerMagic {
		return nil, fmt.Errorf("%w: header %q", ErrBadMagic, data[:4])
	}
	if v := data[4]; v != Version {
		return nil, fmt.Errorf("%w: %d (reader supports %d)", ErrVersion, v, Version)
	}
	trailer := data[len(data)-trailerLen:]
	if string(trailer[4:]) != trailerMagic {
		return nil, fmt.Errorf("%w: trailer %q", ErrBadMagic, trailer[4:])
	}
	footerLen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	footerEnd := int64(len(data) - trailerLen)
	if footerLen > footerEnd-headerLen {
		return nil, fmt.Errorf("%w: footer length %d exceeds archive", ErrTruncated, footerLen)
	}
	a := &Archive{data: data}
	if err := a.decodeFooter(data[footerEnd-footerLen : footerEnd]); err != nil {
		return nil, err
	}
	errs := make([]error, len(a.segments))
	pool := parallel.New(workers)
	if err := pool.Run(context.Background(), len(a.segments), 1, func(ci, lo, hi int) error {
		for i := lo; i < hi; i++ {
			s := a.segments[i]
			if s.offset < headerLen || s.length < 0 || s.length > maxSegment ||
				s.offset+s.length > footerEnd-footerLen {
				errs[i] = fmt.Errorf("%w: segment %d bounds [%d,+%d)", ErrMalformed, i, s.offset, s.length)
				continue
			}
			if got := crc32.Checksum(data[s.offset:s.offset+s.length], castagnoli); got != s.crc {
				errs[i] = fmt.Errorf("%w: segment %d crc %08x != %08x", ErrChecksum, i, got, s.crc)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

func (a *Archive) decodeFooter(b []byte) error {
	d := protowire.NewDecoder(b)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return fmt.Errorf("%w: footer: %v", ErrMalformed, err)
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return fmt.Errorf("%w: footer version: %v", ErrMalformed, err)
			}
			if v != Version {
				return fmt.Errorf("%w: footer says %d", ErrVersion, v)
			}
		case 2:
			raw, err := d.Raw()
			if err != nil {
				return fmt.Errorf("%w: footer segment: %v", ErrMalformed, err)
			}
			s, err := decodeSegment(raw)
			if err != nil {
				return err
			}
			a.segments = append(a.segments, s)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return fmt.Errorf("%w: record count: %v", ErrMalformed, err)
			}
			a.recordCount = int64(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return fmt.Errorf("%w: window count: %v", ErrMalformed, err)
			}
			a.windowCount = int64(v)
		case 5:
			v, err := d.Uint64()
			if err != nil {
				return fmt.Errorf("%w: time first: %v", ErrMalformed, err)
			}
			a.tsFirst = simclock.Time(v)
		case 6:
			v, err := d.Uint64()
			if err != nil {
				return fmt.Errorf("%w: time last: %v", ErrMalformed, err)
			}
			a.tsLast = simclock.Time(v)
		case 7:
			raw, err := d.Raw()
			if err != nil {
				return fmt.Errorf("%w: summary: %v", ErrMalformed, err)
			}
			sum, err := UnmarshalSummary(raw)
			if err != nil {
				return err
			}
			a.summary = sum
		case 8:
			raw, err := d.Raw()
			if err != nil {
				return fmt.Errorf("%w: meta: %v", ErrMalformed, err)
			}
			m, err := unmarshalMeta(raw)
			if err != nil {
				return err
			}
			a.meta = m
		default:
			if err := d.Skip(ty); err != nil {
				return fmt.Errorf("%w: footer field %d: %v", ErrMalformed, f, err)
			}
		}
	}
	return nil
}

func decodeSegment(b []byte) (segment, error) {
	var s segment
	d := protowire.NewDecoder(b)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return s, fmt.Errorf("%w: segment: %v", ErrMalformed, err)
		}
		var v uint64
		switch f {
		case 1, 2, 3, 4:
			if v, err = d.Uint64(); err != nil {
				return s, fmt.Errorf("%w: segment field %d: %v", ErrMalformed, f, err)
			}
		default:
			if err := d.Skip(ty); err != nil {
				return s, fmt.Errorf("%w: segment field %d: %v", ErrMalformed, f, err)
			}
			continue
		}
		switch f {
		case 1:
			s.offset = int64(v)
		case 2:
			s.length = int64(v)
		case 3:
			if v > 0xffffffff {
				return s, fmt.Errorf("%w: segment crc %d", ErrMalformed, v)
			}
			s.crc = uint32(v)
		case 4:
			s.records = int64(v)
		}
	}
	return s, nil
}

// UnmarshalSummary decodes summary wire bytes.
func UnmarshalSummary(b []byte) (*Summary, error) {
	s := &Summary{}
	d := protowire.NewDecoder(b)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("%w: summary: %v", ErrMalformed, err)
		}
		switch f {
		case 1:
			if s.Workload, err = d.String(); err != nil {
				return nil, fmt.Errorf("%w: summary workload: %v", ErrMalformed, err)
			}
		case 2:
			if s.Algorithm, err = d.String(); err != nil {
				return nil, fmt.Errorf("%w: summary algorithm: %v", ErrMalformed, err)
			}
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return nil, fmt.Errorf("%w: summary steps: %v", ErrMalformed, err)
			}
			s.Steps = int64(v)
		case 4:
			if s.IdleFrac, err = d.Double(); err != nil {
				return nil, fmt.Errorf("%w: summary idle: %v", ErrMalformed, err)
			}
		case 5:
			if s.MXUUtil, err = d.Double(); err != nil {
				return nil, fmt.Errorf("%w: summary mxu: %v", ErrMalformed, err)
			}
		case 6:
			if s.CoverageTop3, err = d.Double(); err != nil {
				return nil, fmt.Errorf("%w: summary coverage: %v", ErrMalformed, err)
			}
		case 7:
			v, err := d.Uint64()
			if err != nil {
				return nil, fmt.Errorf("%w: summary total time: %v", ErrMalformed, err)
			}
			s.TotalTime = simclock.Duration(v)
		case 8:
			raw, err := d.Raw()
			if err != nil {
				return nil, fmt.Errorf("%w: summary phase: %v", ErrMalformed, err)
			}
			p, err := unmarshalPhase(raw)
			if err != nil {
				return nil, err
			}
			s.Phases = append(s.Phases, p)
		default:
			if err := d.Skip(ty); err != nil {
				return nil, fmt.Errorf("%w: summary field %d: %v", ErrMalformed, f, err)
			}
		}
	}
	return s, nil
}

func unmarshalPhase(b []byte) (PhaseSummary, error) {
	var p PhaseSummary
	d := protowire.NewDecoder(b)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return p, fmt.Errorf("%w: phase: %v", ErrMalformed, err)
		}
		switch f {
		case 1:
			v, err := d.Int64()
			if err != nil {
				return p, fmt.Errorf("%w: phase id: %v", ErrMalformed, err)
			}
			p.ID = int(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return p, fmt.Errorf("%w: phase steps: %v", ErrMalformed, err)
			}
			p.Steps = int64(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return p, fmt.Errorf("%w: phase start: %v", ErrMalformed, err)
			}
			p.Start = simclock.Time(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return p, fmt.Errorf("%w: phase end: %v", ErrMalformed, err)
			}
			p.End = simclock.Time(v)
		case 5:
			v, err := d.Uint64()
			if err != nil {
				return p, fmt.Errorf("%w: phase total: %v", ErrMalformed, err)
			}
			p.Total = simclock.Duration(v)
		case 6:
			if p.IdleFrac, err = d.Double(); err != nil {
				return p, fmt.Errorf("%w: phase idle: %v", ErrMalformed, err)
			}
		case 7:
			if p.MXUUtil, err = d.Double(); err != nil {
				return p, fmt.Errorf("%w: phase mxu: %v", ErrMalformed, err)
			}
		case 8:
			raw, err := d.Raw()
			if err != nil {
				return p, fmt.Errorf("%w: phase op: %v", ErrMalformed, err)
			}
			op, err := unmarshalOp(raw)
			if err != nil {
				return p, err
			}
			p.Ops = append(p.Ops, op)
		default:
			if err := d.Skip(ty); err != nil {
				return p, fmt.Errorf("%w: phase field %d: %v", ErrMalformed, f, err)
			}
		}
	}
	return p, nil
}

func unmarshalOp(b []byte) (OpSummary, error) {
	var op OpSummary
	d := protowire.NewDecoder(b)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return op, fmt.Errorf("%w: op: %v", ErrMalformed, err)
		}
		switch f {
		case 1:
			if op.Name, err = d.String(); err != nil {
				return op, fmt.Errorf("%w: op name: %v", ErrMalformed, err)
			}
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return op, fmt.Errorf("%w: op device: %v", ErrMalformed, err)
			}
			if v > uint64(trace.TPU) {
				return op, fmt.Errorf("%w: op device %d", ErrMalformed, v)
			}
			op.Device = trace.Device(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return op, fmt.Errorf("%w: op count: %v", ErrMalformed, err)
			}
			op.Count = int64(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return op, fmt.Errorf("%w: op total: %v", ErrMalformed, err)
			}
			op.Total = simclock.Duration(v)
		default:
			if err := d.Skip(ty); err != nil {
				return op, fmt.Errorf("%w: op field %d: %v", ErrMalformed, f, err)
			}
		}
	}
	return op, nil
}

func unmarshalMeta(b []byte) (Meta, error) {
	var m Meta
	d := protowire.NewDecoder(b)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return m, fmt.Errorf("%w: meta: %v", ErrMalformed, err)
		}
		switch f {
		case 1, 2, 3, 4, 5, 7:
			v, err := d.String()
			if err != nil {
				return m, fmt.Errorf("%w: meta field %d: %v", ErrMalformed, f, err)
			}
			switch f {
			case 1:
				m.RunID = v
			case 2:
				m.Workload = v
			case 3:
				m.Label = v
			case 4:
				m.HostSpec = v
			case 5:
				m.TPUVersion = v
			case 7:
				m.Tenant = v
			}
		case 6:
			v, err := d.Uint64()
			if err != nil {
				return m, fmt.Errorf("%w: meta created seq: %v", ErrMalformed, err)
			}
			m.CreatedSeq = v
		default:
			if err := d.Skip(ty); err != nil {
				return m, fmt.Errorf("%w: meta field %d: %v", ErrMalformed, f, err)
			}
		}
	}
	return m, nil
}

// Meta returns the run metadata.
func (a *Archive) Meta() Meta { return a.meta }

// Summary returns the embedded analyzer summary (nil if none).
func (a *Archive) Summary() *Summary { return a.summary }

// RecordCount is the number of archived records (including gaps).
func (a *Archive) RecordCount() int64 { return a.recordCount }

// WindowCount is the number of archived non-gap profile windows.
func (a *Archive) WindowCount() int64 { return a.windowCount }

// TimeRange returns the covered simulated-time span.
func (a *Archive) TimeRange() (first, last simclock.Time) {
	return a.tsFirst, a.tsLast
}

// Size is the blob's byte size.
func (a *Archive) Size() int64 { return int64(len(a.data)) }

// Records decodes every archived record, in archive order. Segments
// decode in parallel across all CPUs; RecordsWorkers bounds the
// fan-out.
func (a *Archive) Records() ([]*trace.ProfileRecord, error) {
	return a.RecordsWorkers(0)
}

// RecordsWorkers is Records with an explicit decode fan-out bound
// (0 = GOMAXPROCS, 1 = serial). Each segment decodes into its own slot
// and the slots merge in segment order, so the result — records and
// error alike — is identical to the serial scan for any worker count
// (see TestDecodeDifferential).
func (a *Archive) RecordsWorkers(workers int) ([]*trace.ProfileRecord, error) {
	chunks := make([][]*trace.ProfileRecord, len(a.segments))
	errs := make([]error, len(a.segments))
	pool := parallel.New(workers)
	if err := pool.Run(context.Background(), len(a.segments), 1, func(ci, lo, hi int) error {
		for i := lo; i < hi; i++ {
			s := a.segments[i]
			out := make([]*trace.ProfileRecord, 0, segCapHint(s))
			out, errs[i] = appendPayloadRecords(out, a.data[s.offset:s.offset+s.length], i)
			chunks[i] = out
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]*trace.ProfileRecord, 0, a.recordCount)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}

// segCapHint sizes a per-segment decode buffer from the footer's record
// count, clamped by what the payload could physically frame so a lying
// footer cannot force an oversized allocation.
func segCapHint(s segment) int64 {
	n := s.records
	if n > s.length {
		n = s.length
	}
	if n < 0 {
		n = 0
	}
	return n
}

// appendPayloadRecords decodes one segment payload — (uvarint len,
// record bytes) pairs — appending onto out. seg only labels errors.
func appendPayloadRecords(out []*trace.ProfileRecord, payload []byte, seg int) ([]*trace.ProfileRecord, error) {
	for pos := 0; pos < len(payload); {
		n, adv := binary.Uvarint(payload[pos:])
		if adv <= 0 || n > uint64(len(payload)-pos-adv) {
			return nil, fmt.Errorf("%w: segment %d record framing at %d", ErrMalformed, seg, pos)
		}
		pos += adv
		rec, err := trace.UnmarshalRecord(payload[pos : pos+int(n)])
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d record: %v", ErrMalformed, seg, err)
		}
		out = append(out, rec)
		pos += int(n)
	}
	return out, nil
}

// Iter returns a streaming reader over the archive's records, in
// archive order. Unlike Records it never materializes the run: one
// record is decoded per Next, so consumers that reduce or forward
// records hold O(1) of them regardless of run size.
//
//	it := a.Iter()
//	for it.Next() {
//		use(it.Record())
//	}
//	if err := it.Err(); err != nil { ... }
func (a *Archive) Iter() *Iter { return &Iter{a: a} }

// Iter is a scanner-style record stream over an opened archive. Not
// safe for concurrent use; open one Iter per goroutine.
type Iter struct {
	a       *Archive
	rec     *trace.ProfileRecord
	err     error
	seg     int    // next segment to load
	cur     int    // segment the current payload came from
	payload []byte // remaining bytes of the current segment
	pos     int    // decode offset within payload (error labels)
}

// Next advances to the next record, reporting false at the end of the
// stream or on the first decode error (see Err).
func (it *Iter) Next() bool {
	if it.err != nil {
		return false
	}
	for it.pos >= len(it.payload) {
		if it.seg >= len(it.a.segments) {
			return false
		}
		s := it.a.segments[it.seg]
		it.payload = it.a.data[s.offset : s.offset+s.length]
		it.pos = 0
		it.cur = it.seg
		it.seg++
	}
	n, adv := binary.Uvarint(it.payload[it.pos:])
	if adv <= 0 || n > uint64(len(it.payload)-it.pos-adv) {
		it.err = fmt.Errorf("%w: segment %d record framing at %d", ErrMalformed, it.cur, it.pos)
		return false
	}
	start := it.pos + adv
	rec, err := trace.UnmarshalRecord(it.payload[start : start+int(n)])
	if err != nil {
		it.err = fmt.Errorf("%w: segment %d record: %v", ErrMalformed, it.cur, err)
		return false
	}
	it.rec = rec
	it.pos = start + int(n)
	return true
}

// Record returns the record Next advanced to.
func (it *Iter) Record() *trace.ProfileRecord { return it.rec }

// Err returns the first decode error, if any. A clean end of stream
// returns nil.
func (it *Iter) Err() error { return it.err }
