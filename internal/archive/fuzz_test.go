package archive

import (
	"testing"

	"repro/internal/trace"
)

// FuzzOpen feeds arbitrary bytes to the archive reader. The contract
// under corruption is typed errors, never a panic — the same promise
// trace's record decoder makes (internal/trace/fuzz_test.go).
func FuzzOpen(f *testing.F) {
	// Seed with a small valid archive plus targeted mutations of it.
	w := NewWriter(Meta{RunID: "fuzz", Workload: "w"})
	w.SetSegmentTarget(64)
	for i := 0; i < 6; i++ {
		w.Add(trace.Reduce(int64(i), 0, []trace.Event{
			{Name: "MatMul", Device: trace.TPU, Start: 0, Dur: 10, Step: int64(i)},
		}, 0.2, 0.4))
	}
	valid := w.Finalize(&Summary{Workload: "w", Algorithm: "ols", Steps: 6,
		Phases: []PhaseSummary{{ID: 0, Steps: 6, Ops: []OpSummary{{Name: "MatMul", Device: trace.TPU, Count: 6, Total: 60}}}}})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("TPAR"))
	f.Add([]byte("TPAR\x01TPAF"))
	for _, cut := range []int{1, 4, 8, len(valid) / 2} {
		if cut < len(valid) {
			f.Add(valid[:len(valid)-cut])
		}
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Open(data)
		if err != nil {
			return
		}
		// A blob that opens cleanly must also decode without panicking.
		if _, err := a.Records(); err != nil {
			return
		}
		_ = a.Meta()
		_ = a.Summary()
	})
}

// FuzzSalvage feeds arbitrary bytes to the lenient reader. Its
// contract is stronger than Open's: it must never panic, be fully
// deterministic, never hand back a record from a CRC-failing indexed
// segment, and agree with Open whenever Open succeeds.
func FuzzSalvage(f *testing.F) {
	w := NewWriter(Meta{RunID: "fuzz", Workload: "w"})
	w.SetSegmentTarget(64)
	for i := 0; i < 6; i++ {
		w.Add(trace.Reduce(int64(i), 0, []trace.Event{
			{Name: "MatMul", Device: trace.TPU, Start: 0, Dur: 10, Step: int64(i)},
		}, 0.2, 0.4))
	}
	valid := w.Finalize(nil)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("TPAR\x01"))
	for _, cut := range []int{1, 4, trailerLen, len(valid) / 2} {
		if cut < len(valid) {
			f.Add(valid[:len(valid)-cut])
		}
	}
	flipped := append([]byte(nil), valid...)
	flipped[headerLen+9] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Salvage(data)
		res2, err2 := Salvage(data)
		if (err == nil) != (err2 == nil) {
			t.Fatal("salvage error nondeterministic")
		}
		if err != nil {
			return
		}
		if int64(len(res.Records)) != res.Report.RecordsKept ||
			len(res.Records) != len(res2.Records) ||
			renderReport(res.Report) != renderReport(res2.Report) {
			t.Fatalf("salvage nondeterministic: %+v vs %+v", res.Report, res2.Report)
		}
		for i := range res.Records {
			if string(trace.MarshalRecord(res.Records[i])) != string(trace.MarshalRecord(res2.Records[i])) {
				t.Fatal("salvaged records nondeterministic")
			}
		}
		// Whatever survives must re-archive into a blob Open verifies.
		if _, err := Open(Rebuild(res.Meta, res)); err != nil {
			t.Fatalf("rebuilt salvage does not verify: %v", err)
		}
		// Agreement with the strict reader.
		if a, err := Open(data); err == nil {
			want, err := a.Records()
			if err == nil {
				if !res.Report.Lossless() || len(res.Records) != len(want) {
					t.Fatalf("Open succeeded but salvage lost data: %+v", res.Report)
				}
			}
		}
	})
}
