package archive

import (
	"testing"

	"repro/internal/trace"
)

// FuzzOpen feeds arbitrary bytes to the archive reader. The contract
// under corruption is typed errors, never a panic — the same promise
// trace's record decoder makes (internal/trace/fuzz_test.go).
func FuzzOpen(f *testing.F) {
	// Seed with a small valid archive plus targeted mutations of it.
	w := NewWriter(Meta{RunID: "fuzz", Workload: "w"})
	w.SetSegmentTarget(64)
	for i := 0; i < 6; i++ {
		w.Add(trace.Reduce(int64(i), 0, []trace.Event{
			{Name: "MatMul", Device: trace.TPU, Start: 0, Dur: 10, Step: int64(i)},
		}, 0.2, 0.4))
	}
	valid := w.Finalize(&Summary{Workload: "w", Algorithm: "ols", Steps: 6,
		Phases: []PhaseSummary{{ID: 0, Steps: 6, Ops: []OpSummary{{Name: "MatMul", Device: trace.TPU, Count: 6, Total: 60}}}}})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("TPAR"))
	f.Add([]byte("TPAR\x01TPAF"))
	for _, cut := range []int{1, 4, 8, len(valid) / 2} {
		if cut < len(valid) {
			f.Add(valid[:len(valid)-cut])
		}
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Open(data)
		if err != nil {
			return
		}
		// A blob that opens cleanly must also decode without panicking.
		if _, err := a.Records(); err != nil {
			return
		}
		_ = a.Meta()
		_ = a.Summary()
	})
}
