// Package tpupoint is a Go reproduction of TPUPoint (Wudenhe & Tseng,
// ISPASS 2021): a toolchain that characterizes and auto-tunes the behavior
// of machine-learning workloads on Cloud TPUs.
//
// Because no TPU hardware is reachable from Go, the package ships its own
// substrate: a calibrated discrete-timing simulator of TPUv2/TPUv3 chips,
// the host input pipeline, an XLA-style fusion compiler, and the nine
// model/dataset workloads of the paper's Table I. On top of that substrate
// sit faithful implementations of the paper's three tools:
//
//   - TPUPoint-Profiler: a background goroutine that streams statistical
//     profile records from the (simulated) TPU while training runs;
//   - TPUPoint-Analyzer: phase detection via OLS (Equation 1), k-means,
//     and DBSCAN, with coverage metrics, top-op tables, checkpoint
//     association, and chrome://tracing visualization;
//   - TPUPoint-Optimizer: online hill-climbing over the input pipeline's
//     adjustable parameters with checkpoint/rollback.
//
// The quickstart mirrors the paper's Figure 2:
//
//	s, _ := tpupoint.NewSession("resnet-imagenet", tpupoint.Options{Version: tpupoint.V2})
//	p, _ := s.StartProfiler(true) // analyzer mode
//	_ = s.Train()
//	records, _ := p.Stop()
//	rep, _ := s.Analyze(records, tpupoint.OLS)
package tpupoint

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/archive"
	"repro/internal/core/analyzer"
	"repro/internal/core/optimizer"
	"repro/internal/core/profiler"
	"repro/internal/core/viz"
	"repro/internal/datasets"
	"repro/internal/estimator"
	"repro/internal/host"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/storage"
	"repro/internal/tpu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Version selects a Cloud TPU generation.
type Version = tpu.Version

// Supported generations.
const (
	V2 = tpu.V2
	V3 = tpu.V3
)

// Algorithm selects a phase-detection method for Analyze.
type Algorithm = analyzer.Algorithm

// Phase-detection algorithms.
const (
	OLS    = analyzer.OLSAlgo
	KMeans = analyzer.KMeansAlgo
	DBSCAN = analyzer.DBSCANAlgo
)

// Re-exported result types. Aliases keep the internal packages as the
// single source of truth while giving users one import.
type (
	// Report is a full TPUPoint-Analyzer result.
	Report = analyzer.Report
	// Phase is one detected program phase.
	Phase = analyzer.Phase
	// ProfileRecord is one statistical profile record.
	ProfileRecord = trace.ProfileRecord
	// OptimizeResult compares a tuned run against its baseline.
	OptimizeResult = optimizer.Result
	// PipelineParams are the adjustable input-pipeline parameters.
	PipelineParams = host.Params
	// Workload is a runnable model/dataset pair from the Table I registry.
	Workload = workloads.Workload
	// Metrics is the observability registry components report into; pass
	// one via Options.Obs / OptimizeOptions.Obs and snapshot it after the
	// run (see internal/obs).
	Metrics = obs.Registry
)

// NewMetrics builds an observability registry with the given event-ring
// capacity (0 = default).
func NewMetrics(eventCap int) *Metrics { return obs.NewRegistry(eventCap) }

// Workloads returns the names of the nine Table I workloads.
func Workloads() []string { return workloads.Names() }

// GetWorkload builds a workload spec by registry name.
func GetWorkload(name string) (*Workload, error) { return workloads.Get(name) }

// Options configure a Session.
type Options struct {
	// Version is the TPU generation (default V2).
	Version Version

	// Steps overrides the workload's simulated train-step count.
	Steps int

	// NaivePipeline runs the untuned input pipeline of the paper's naive
	// implementations.
	NaivePipeline bool

	// SmallDataset selects the reduced-dataset variant (Figures 12/13).
	SmallDataset bool

	// HostParams overrides the pipeline parameters outright.
	HostParams *PipelineParams

	// Seed overrides the workload's deterministic seed.
	Seed uint64

	// Parallelism bounds the analyzer's clustering worker pool
	// (0 = GOMAXPROCS, 1 = serial). Phase results are bit-identical for
	// every setting.
	Parallelism int

	// Obs, when set, collects metrics and structured events from every
	// component the session wires together (profiler, analyzer). Nil
	// disables observability at zero cost.
	Obs *obs.Registry
}

// Session owns one training run: the workload, the simulated machine, a
// storage bucket for checkpoints and profile records, and the wiring
// between them.
type Session struct {
	workload    *Workload
	runner      *estimator.Runner
	bucket      *storage.Bucket
	trained     bool
	parallelism int
	obs         *obs.Registry
}

// NewSession prepares a training session for a named workload.
func NewSession(workloadName string, opts Options) (*Session, error) {
	w, err := workloads.Get(workloadName)
	if err != nil {
		return nil, err
	}
	if opts.SmallDataset {
		if w, err = w.Small(); err != nil {
			return nil, err
		}
	}
	if opts.NaivePipeline {
		w = w.Naive()
	}

	svc := storage.NewService()
	bucket, err := svc.CreateBucket("tpupoint-" + w.Name)
	if err != nil {
		return nil, err
	}
	// Stage a sample of the training data in the bucket, the way a Cloud
	// TPU job stages records for its input pipeline (capped: only record
	// sizes matter to anything observable).
	if _, err := datasets.Generate(bucket, w.Dataset, 128, w.Seed); err != nil {
		return nil, err
	}
	eopts := estimator.Options{
		Version: opts.Version,
		Steps:   opts.Steps,
		Seed:    opts.Seed,
		Bucket:  bucket,
	}
	if opts.HostParams != nil {
		eopts.HostParams = opts.HostParams
	}
	runner, err := estimator.New(w, eopts)
	if err != nil {
		return nil, err
	}
	return &Session{workload: w, runner: runner, bucket: bucket,
		parallelism: opts.Parallelism, obs: opts.Obs}, nil
}

// Workload returns the session's workload spec.
func (s *Session) Workload() *Workload { return s.workload }

// Bucket returns the session's storage bucket (checkpoints, profiles).
func (s *Session) Bucket() *storage.Bucket { return s.bucket }

// StartProfiler attaches a TPUPoint-Profiler to the session and starts
// it. With analyzer=true, records are also persisted to the session
// bucket under "profiles/" for offline analysis — the Figure 2 API.
func (s *Session) StartProfiler(analyzerMode bool) (*profiler.Profiler, error) {
	p := profiler.New(
		&profiler.ServiceClient{Service: s.runner.ProfileService()},
		profiler.Options{Bucket: s.bucket, Obs: s.obs},
	)
	if err := p.Start(analyzerMode); err != nil {
		return nil, err
	}
	return p, nil
}

// StartProfilerTo starts the profiler in analyzer mode but persists
// records into the given store instead of the session bucket — e.g. a
// profiler.ArchiveSink, or a repo.FleetClient streaming to a fleet
// collection server.
func (s *Session) StartProfilerTo(store profiler.RecordStore) (*profiler.Profiler, error) {
	p := profiler.New(
		&profiler.ServiceClient{Service: s.runner.ProfileService()},
		profiler.Options{Bucket: store, Obs: s.obs},
	)
	if err := p.Start(true); err != nil {
		return nil, err
	}
	return p, nil
}

// Train executes the training run (estimator.train in the paper's code).
func (s *Session) Train() error {
	if s.trained {
		return errors.New("tpupoint: session already trained")
	}
	s.trained = true
	return s.runner.Run()
}

// IdleFraction returns the TPU idle share of the completed run.
func (s *Session) IdleFraction() float64 { return s.runner.IdleFraction() }

// MXUUtilization returns the FLOP-weighted MXU occupancy of the run.
func (s *Session) MXUUtilization() float64 { return s.runner.MXUUtilization() }

// TotalSeconds returns the simulated wall time of the run in seconds.
func (s *Session) TotalSeconds() float64 { return s.runner.TotalTime().Seconds() }

// Analyze runs TPUPoint-Analyzer over profile records with the given
// algorithm, associating phases with the run's checkpoints.
func (s *Session) Analyze(records []*ProfileRecord, algo Algorithm) (*Report, error) {
	rep, err := analyzer.Analyze(s.workload.Name, records, algo,
		analyzer.Options{Seed: s.workload.Seed, Parallelism: s.parallelism, Obs: s.obs})
	if err != nil {
		return nil, err
	}
	var cks []analyzer.Checkpoint
	for _, ck := range s.runner.Checkpoints() {
		cks = append(cks, analyzer.Checkpoint{Step: ck.Step, Object: ck.Object})
	}
	analyzer.AssociateCheckpoints(rep.Phases, cks)
	return rep, nil
}

// LoadRecords reads the profile records the profiler persisted to the
// session bucket — the offline-analysis entry point.
func (s *Session) LoadRecords() ([]*ProfileRecord, error) {
	return profiler.LoadRecords(s.bucket, "profiles/")
}

// WriteTrace emits the chrome://tracing visualization of a report plus
// the records it came from (the paper's Figure 3 artifact).
func (s *Session) WriteTrace(w io.Writer, rep *Report, records []*ProfileRecord) error {
	return viz.WriteChromeTrace(w, rep.Phases, records, s.runner.Events(), 5000)
}

// WriteCSV emits the CSV phase summary of a report.
func (s *Session) WriteCSV(w io.Writer, rep *Report) error {
	return viz.WriteCSV(w, rep)
}

// ArchiveRun packs a completed run — its profile records plus the
// analyzer report (which may be nil) — into a profile archive and
// indexes it in the repository under runID. The archive embeds the
// workload name, host spec, TPU generation, and an optional free-form
// label so later `runs list`/`runs diff` invocations can locate and
// compare it.
func (s *Session) ArchiveRun(r *repo.Repo, runID, label string, records []*ProfileRecord, rep *Report) (repo.RunInfo, error) {
	if r == nil {
		return repo.RunInfo{}, errors.New("tpupoint: nil repository")
	}
	if runID == "" {
		return repo.RunInfo{}, errors.New("tpupoint: empty run ID")
	}
	seq, err := r.NextSeq()
	if err != nil {
		return repo.RunInfo{}, err
	}
	spec := s.workload.Spec()
	w := archive.NewWriter(archive.Meta{
		RunID:      runID,
		Workload:   s.workload.Name,
		Label:      label,
		HostSpec:   fmt.Sprintf("%dc %gMBps", spec.Cores, spec.ReadMBps),
		TPUVersion: s.runner.Spec().Version.String(),
		CreatedSeq: seq,
	})
	for _, rec := range records {
		w.Add(rec)
	}
	var sum *archive.Summary
	if rep != nil {
		sum = archive.SummarizeReport(rep)
	}
	return r.Save(w.Finalize(sum))
}

// Resume builds a new session that fast-forwards this session's workload
// to just after one of its saved checkpoints — the paper's
// checkpoint/restart feature: analyze a run, pick a phase, and re-execute
// from that phase's checkpoint "without starting from step zero".
//
// checkpoint is an object name from a Phase's Checkpoint field or from
// the session's checkpoint list; the new session shares this session's
// bucket so the state is available to restore. opts.Steps sets how many
// further training steps to run (the workload default if zero).
func (s *Session) Resume(checkpoint string, opts Options) (*Session, error) {
	if checkpoint == "" {
		return nil, errors.New("tpupoint: empty checkpoint name")
	}
	var startStep int64 = -1
	for _, ck := range s.runner.Checkpoints() {
		if ck.Object == checkpoint {
			startStep = ck.Step + 1
			break
		}
	}
	if startStep < 0 {
		return nil, fmt.Errorf("tpupoint: checkpoint %q was not saved by this session", checkpoint)
	}
	if opts.Version == 0 {
		opts.Version = s.runner.Spec().Version
	}
	eopts := estimator.Options{
		Version:     opts.Version,
		Steps:       opts.Steps,
		Seed:        opts.Seed,
		Bucket:      s.bucket,
		StartStep:   startStep,
		RestoreFrom: checkpoint,
	}
	if opts.HostParams != nil {
		eopts.HostParams = opts.HostParams
	}
	runner, err := estimator.New(s.workload, eopts)
	if err != nil {
		return nil, err
	}
	return &Session{workload: s.workload, runner: runner, bucket: s.bucket, parallelism: opts.Parallelism}, nil
}

// OptimizeOptions configure Optimize.
type OptimizeOptions struct {
	Version Version
	Steps   int
	Seed    uint64
	// Naive tunes the paper's naive implementation instead of the
	// hand-tuned reference.
	Naive bool
	// Obs, when set, collects the optimizer's probe/rollback metrics and
	// per-axis move events.
	Obs *obs.Registry
}

// Optimize runs TPUPoint-Optimizer on a named workload and reports the
// speedup and utilization changes against an untuned baseline.
func Optimize(workloadName string, opts OptimizeOptions) (*OptimizeResult, error) {
	w, err := workloads.Get(workloadName)
	if err != nil {
		return nil, err
	}
	if opts.Naive {
		w = w.Naive()
	}
	return optimizer.Optimize(w, optimizer.Options{
		Version: opts.Version,
		Steps:   opts.Steps,
		Seed:    opts.Seed,
		Obs:     opts.Obs,
	})
}

// Describe formats a one-line summary of a workload, Table I style.
func Describe(w *Workload) string {
	return fmt.Sprintf("%-16s %-22s model=%-10s dataset=%s (%.2f MiB, %d records) batch=%d",
		w.Name, w.Task, w.Model, w.Dataset.Name,
		float64(w.Dataset.SizeBytes)/(1<<20), w.Dataset.Records, w.BatchSize)
}
